#include "net/spot_server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/log.h"
#include "service/spot_service.h"

namespace spot {
namespace net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::atomic<SpotServer*> g_signal_server{nullptr};

void StopOnSignal(int /*signo*/) {
  SpotServer* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->Stop();  // a single atomic store
}

}  // namespace

// ---------------------------------------------------------------- poller --

/// Readiness-notification interface: epoll on Linux, poll(2) elsewhere
/// (or when SpotServerConfig::use_epoll is off). Level-triggered in both
/// implementations, so a partially drained buffer simply re-reports.
class SpotServer::Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  virtual ~Poller() = default;
  virtual bool Add(int fd, bool read, bool write) = 0;
  virtual void Update(int fd, bool read, bool write) = 0;
  virtual void Remove(int fd) = 0;
  /// Waits up to `timeout_ms`; fills `out`. Returns the event count, 0 on
  /// timeout, -1 on a wait error other than EINTR.
  virtual int Wait(int timeout_ms, std::vector<Event>* out) = 0;
};

class SpotServer::PollPoller : public SpotServer::Poller {
 public:
  bool Add(int fd, bool read, bool write) override {
    interest_[fd] = {read, write};
    return true;
  }
  void Update(int fd, bool read, bool write) override {
    auto it = interest_.find(fd);
    if (it != interest_.end()) it->second = {read, write};
  }
  void Remove(int fd) override { interest_.erase(fd); }

  int Wait(int timeout_ms, std::vector<Event>* out) override {
    fds_.clear();
    for (const auto& [fd, want] : interest_) {
      short events = 0;
      if (want.first) events |= POLLIN;
      if (want.second) events |= POLLOUT;
      fds_.push_back(pollfd{fd, events, 0});
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    out->clear();
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(e);
    }
    return static_cast<int>(out->size());
  }

 private:
  std::map<int, std::pair<bool, bool>> interest_;
  std::vector<pollfd> fds_;
};

#ifdef __linux__
class SpotServer::EpollPoller : public SpotServer::Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  bool Add(int fd, bool read, bool write) override {
    epoll_event ev = MakeEvent(fd, read, write);
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
  void Update(int fd, bool read, bool write) override {
    epoll_event ev = MakeEvent(fd, read, write);
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }
  void Remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int Wait(int timeout_ms, std::vector<Event>* out) override {
    epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    out->clear();
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(e);
    }
    return n;
  }

 private:
  static epoll_event MakeEvent(int fd, bool read, bool write) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    return ev;
  }

  int epfd_;
};
#endif  // __linux__

// ---------------------------------------------------------------- server --

SpotServer::SpotServer(SpotService* service, SpotServerConfig config)
    : service_(service), config_(std::move(config)) {
  if (config_.batch_points == 0) config_.batch_points = 1;
}

SpotServer::~SpotServer() {
  Stop();
  Shutdown();
  if (g_signal_server.load(std::memory_order_relaxed) == this) {
    g_signal_server.store(nullptr, std::memory_order_relaxed);
  }
}

void SpotServer::InstallSignalHandlers(SpotServer* server) {
  g_signal_server.store(server, std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = StopOnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // Writes to a peer-closed socket must surface as EPIPE, not kill the
  // process (the loop also passes MSG_NOSIGNAL, this covers stray paths).
  ::signal(SIGPIPE, SIG_IGN);
}

bool SpotServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    SPOT_LOG(Error) << "socket(): " << std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    SPOT_LOG(Error) << "bad bind address '" << config_.bind_address << "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, config_.backlog) != 0 ||
      !SetNonBlocking(listen_fd_)) {
    SPOT_LOG(Error) << "bind/listen on " << config_.bind_address << ":"
                    << config_.port << ": " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

#ifdef __linux__
  if (config_.use_epoll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) poller_ = std::move(epoll);
  }
#endif
  if (poller_ == nullptr) poller_ = std::make_unique<PollPoller>();
  poller_->Add(listen_fd_, /*read=*/true, /*write=*/false);
  SPOT_LOG(Info) << "spot server listening on " << config_.bind_address
                 << ":" << port_;
  return true;
}

void SpotServer::Run() {
  while (RunOnce(config_.poll_interval_ms)) {
  }
  Shutdown();
}

bool SpotServer::RunOnce(int timeout_ms) {
  if (stopping() || poller_ == nullptr) return false;
  std::vector<Poller::Event> events;
  if (poller_->Wait(timeout_ms, &events) < 0) {
    SPOT_LOG(Error) << "event wait failed: " << std::strerror(errno);
    Stop();
    return false;
  }
  if (listener_paused_) {
    // Re-arm the listener paused by an fd-exhausted accept. This must
    // happen AFTER a Wait, not before it: re-arming first would put the
    // still-unaccepted connection right back into the wait set, making
    // it return immediately and turning the "pause" into a hot
    // accept/EMFILE spin. Waiting once without the listener restores
    // the idle cadence the pause exists to protect.
    poller_->Add(listen_fd_, /*read=*/true, /*write=*/false);
    listener_paused_ = false;
  }
  for (const Poller::Event& ev : events) {
    if (ev.fd == listen_fd_) {
      AcceptReady();
      continue;
    }
    if (ev.error && conns_.count(ev.fd) > 0) {
      CloseConn(ev.fd);
      continue;
    }
    if (ev.readable) ReadReady(ev.fd);
    if (ev.writable) WriteReady(ev.fd);  // re-checks liveness itself
  }
  // End-of-turn batch cut: whatever points arrived together in this turn
  // are processed together (the coalescing the protocol is built around).
  FlushAllPending();
  // Deferred closes: connections marked want_close go once their output
  // drained (or their socket broke).
  std::vector<int> doomed;
  for (const auto& [fd, conn] : conns_) {
    if (conn->want_close && conn->out_off >= conn->outbuf.size()) {
      doomed.push_back(fd);
    }
  }
  for (int fd : doomed) CloseConn(fd);
  return !stopping();
}

void SpotServer::Shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  // Process every connection's pending points (they arrived; the engine
  // state must reflect them before the checkpoint), push what we can of
  // the outbound queues without blocking, and close.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    for (auto& [id, pending] : conn.pending) {
      if (!pending.empty()) ProcessPending(conn, id, /*all=*/true);
    }
    TryFlush(conn);
    CloseConn(fd);
  }
  if (listen_fd_ >= 0) {
    if (poller_ != nullptr) poller_->Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  poller_.reset();
  if (service_ != nullptr && !service_->config().checkpoint_dir.empty()) {
    if (service_->CheckpointAll()) {
      SPOT_LOG(Info) << "shutdown checkpoint: all sessions saved";
    } else {
      SPOT_LOG(Error) << "shutdown checkpoint failed for some sessions";
    }
  }
}

// ----------------------------------------------------------- connections --

void SpotServer::AcceptReady() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors with a connection still queued: the
        // level-triggered listen fd would re-fire every Wait and spin the
        // loop hot. Deregister it for one turn (RunOnce re-arms it) so
        // the degraded server keeps its idle cadence.
        SPOT_LOG(Error) << "accept(): " << std::strerror(errno)
                        << "; pausing the listener for one turn";
        poller_->Remove(listen_fd_);
        listener_paused_ = true;
      }
      return;  // EAGAIN or transient accept failure: try next turn
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                   sizeof(config_.sndbuf_bytes));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->decoder = FrameDecoder(config_.max_payload_bytes);
    poller_->Add(fd, /*read=*/true, /*write=*/false);
    conns_.emplace(fd, std::move(conn));
    ++stats_.connections_accepted;
  }
}

void SpotServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  // Points the client successfully delivered are part of the stream even
  // if it vanished before reading the verdicts: process them so the
  // session's engine state stays deterministic (the verdicts go nowhere).
  for (auto& [id, pending] : conn.pending) {
    if (!pending.empty()) ProcessPending(conn, id, /*all=*/true);
  }
  DetachSessions(conn);
  if (poller_ != nullptr) poller_->Remove(fd);
  ::close(fd);
  conns_.erase(it);
  ++stats_.connections_closed;
}

bool SpotServer::AttachSession(Conn& conn, const std::string& id,
                               std::string* error) {
  auto it = session_owner_.find(id);
  if (it != session_owner_.end()) {
    if (it->second == conn.fd) return true;
    *error = "session '" + id + "' is attached to another connection";
    return false;
  }
  session_owner_[id] = conn.fd;
  conn.sessions.push_back(id);
  return true;
}

void SpotServer::DetachSessions(Conn& conn) {
  for (const std::string& id : conn.sessions) session_owner_.erase(id);
  conn.sessions.clear();
  conn.pending.clear();
}

// ----------------------------------------------------------------- reads --

void SpotServer::ReadReady(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  char buf[65536];
  while (!conn.paused && !conn.want_close) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      CloseConn(fd);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(fd);
      return;
    }
    stats_.bytes_in += static_cast<std::uint64_t>(n);
    conn.decoder.Append(buf, static_cast<std::size_t>(n));
    Frame frame;
    while (!conn.want_close) {
      const FrameDecoder::Status status = conn.decoder.Next(&frame);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kCorrupt) {
        // The byte stream cannot be resynchronized mid-frame: drop the
        // connection. (Sessions stay intact; the client can reconnect.)
        ++stats_.corrupt_frames;
        SPOT_LOG(Error) << "closing connection " << fd << ": "
                        << conn.decoder.error();
        CloseConn(fd);
        return;
      }
      ++stats_.frames_received;
      if (!HandleFrame(conn, frame)) {
        // Response (if any) is queued; close once it drains.
        conn.want_close = true;
      }
    }
  }
  SyncPollerInterest(conn);
}

bool SpotServer::HandleFrame(Conn& conn, const Frame& frame) {
  const std::uint8_t type = static_cast<std::uint8_t>(frame.type);
  if (!IsRequestType(type)) {
    ++stats_.protocol_errors;
    SendError(conn, frame.type, "unexpected non-request frame");
    return false;
  }
  switch (frame.type) {
    case MsgType::kCreateSession: {
      CreateSessionReq req;
      if (!DecodeCreateSession(frame.payload, &req)) break;
      std::string error;
      if (service_->HasSession(req.session_id)) {
        SendError(conn, frame.type,
                  "session '" + req.session_id + "' already exists");
        return true;
      }
      if (!AttachSession(conn, req.session_id, &error)) {
        SendError(conn, frame.type, error);
        return true;
      }
      if (!service_->CreateSession(req.session_id, req.config,
                                   req.training)) {
        // Roll the attachment back; the id was never registered.
        session_owner_.erase(req.session_id);
        conn.sessions.pop_back();
        SendError(conn, frame.type,
                  "CreateSession('" + req.session_id +
                      "') failed (invalid id, config or training)");
        return true;
      }
      SendOk(conn, frame.type);
      return true;
    }
    case MsgType::kResumeSession: {
      ResumeSessionReq req;
      if (!DecodeResumeSession(frame.payload, &req)) break;
      std::string error;
      if (!service_->HasSession(req.session_id) &&
          !service_->OpenSession(req.session_id)) {
        SendError(conn, frame.type,
                  "no session or checkpoint for '" + req.session_id + "'");
        return true;
      }
      if (!AttachSession(conn, req.session_id, &error)) {
        SendError(conn, frame.type, error);
        return true;
      }
      SendOk(conn, frame.type);
      return true;
    }
    case MsgType::kIngest:
      if (HandleIngest(conn, frame.payload)) return true;
      return !conn.want_close;  // ingest errors close (stream ordering)
    case MsgType::kFlush: {
      FlushReq req;
      if (!DecodeFlush(frame.payload, &req)) break;
      if (!req.session_id.empty()) {
        auto owner = session_owner_.find(req.session_id);
        if (owner == session_owner_.end() || owner->second != conn.fd) {
          SendError(conn, frame.type,
                    "session '" + req.session_id +
                        "' is not attached to this connection");
          return true;
        }
      }
      bool ok = true;
      for (auto& [id, pending] : conn.pending) {
        if (!req.session_id.empty() && id != req.session_id) continue;
        if (!pending.empty()) ok &= ProcessPending(conn, id, /*all=*/true);
      }
      if (!ok) return false;  // ProcessPending queued the error
      SendOk(conn, frame.type);
      return true;
    }
    case MsgType::kCheckpoint: {
      CheckpointReq req;
      if (!DecodeCheckpoint(frame.payload, &req)) break;
      // A checkpoint must cover every point this connection delivered.
      for (auto& [id, pending] : conn.pending) {
        if (!pending.empty() && !ProcessPending(conn, id, /*all=*/true)) {
          return false;
        }
      }
      const bool ok = req.session_id.empty()
                          ? service_->CheckpointAll()
                          : service_->Checkpoint(req.session_id);
      if (ok) {
        SendOk(conn, frame.type);
      } else {
        SendError(conn, frame.type, "checkpoint failed");
      }
      return true;
    }
    case MsgType::kCloseSession: {
      CloseSessionReq req;
      if (!DecodeCloseSession(frame.payload, &req)) break;
      auto owner = session_owner_.find(req.session_id);
      if (owner == session_owner_.end() || owner->second != conn.fd) {
        SendError(conn, frame.type,
                  "session '" + req.session_id +
                      "' is not attached to this connection");
        return true;
      }
      auto pending = conn.pending.find(req.session_id);
      if (pending != conn.pending.end() && !pending->second.empty() &&
          !ProcessPending(conn, req.session_id, /*all=*/true)) {
        return false;
      }
      if (!service_->CloseSession(req.session_id, req.persist)) {
        SendError(conn, frame.type,
                  "CloseSession('" + req.session_id + "') failed");
        return true;
      }
      session_owner_.erase(req.session_id);
      conn.sessions.erase(std::find(conn.sessions.begin(),
                                    conn.sessions.end(), req.session_id));
      conn.pending.erase(req.session_id);
      SendOk(conn, frame.type);
      return true;
    }
    default:
      break;
  }
  ++stats_.protocol_errors;
  SendError(conn, frame.type, "malformed request payload");
  return false;
}

bool SpotServer::HandleIngest(Conn& conn, const std::string& payload) {
  IngestReq req;
  if (!DecodeIngest(payload, &req)) {
    ++stats_.protocol_errors;
    SendError(conn, MsgType::kIngest, "malformed ingest payload");
    conn.want_close = true;
    return false;
  }
  auto owner = session_owner_.find(req.session_id);
  if (owner == session_owner_.end() || owner->second != conn.fd) {
    SendError(conn, MsgType::kIngest,
              "session '" + req.session_id +
                  "' is not attached to this connection");
    conn.want_close = true;
    return false;
  }
  std::vector<DataPoint>& pending = conn.pending[req.session_id];
  pending.insert(pending.end(),
                 std::make_move_iterator(req.points.begin()),
                 std::make_move_iterator(req.points.end()));
  SessionNetActivity activity;
  activity.frames_received = 1;
  activity.bytes_in = kFrameHeaderBytes + payload.size();
  activity.queue_depth = pending.size();
  service_->RecordNetwork(req.session_id, activity);
  // Early batch cut: keep memory bounded when a client pipelines far
  // ahead; the remainder rides the end-of-turn flush.
  if (pending.size() >= config_.batch_points) {
    return ProcessPending(conn, req.session_id, /*all=*/false);
  }
  return true;
}

// --------------------------------------------------------------- batches --

bool SpotServer::ProcessPending(Conn& conn, const std::string& id,
                                bool all) {
  std::vector<DataPoint>& pending = conn.pending[id];
  // Consume by index and erase the prefix once at the end: erasing per
  // chunk would shift the whole remainder every iteration, turning one
  // large coalesced backlog into quadratic work inside the event loop.
  std::size_t pos = 0;
  bool ok = true;
  while (pending.size() - pos >= (all ? 1 : config_.batch_points)) {
    const std::size_t n =
        std::min(pending.size() - pos, config_.batch_points);
    std::vector<DataPoint> chunk;
    chunk.reserve(n);
    std::move(pending.begin() + static_cast<long>(pos),
              pending.begin() + static_cast<long>(pos + n),
              std::back_inserter(chunk));
    pos += n;
    IngestResult result = service_->Ingest(id, chunk);
    if (!result.ok) {
      SendError(conn, MsgType::kIngest,
                "Ingest('" + id + "') failed at the service");
      conn.want_close = true;
      ok = false;
      break;
    }
    ++stats_.batches_run;
    stats_.points_ingested += n;
    // A large coalesced run's verdicts can encode past the wire payload
    // cap (13 bytes per verdict + 32 per finding), which the client's
    // decoder would latch as corrupt. Split the run into as many
    // kVerdicts frames as the cap requires — protocol-legal (verdicts
    // arrive "batched however the server coalesced them") with
    // first_point_id kept accurate per frame.
    const std::size_t header_bytes = 4 + id.size() + 8 + 4;
    std::size_t begin = 0;
    while (begin < result.verdicts.size()) {
      std::size_t bytes = header_bytes;
      std::size_t end = begin;
      while (end < result.verdicts.size()) {
        const std::size_t vbytes =
            13 + 32 * result.verdicts[end].findings.size();
        if (end > begin && bytes + vbytes > config_.max_payload_bytes) {
          break;
        }
        bytes += vbytes;
        ++end;
      }
      VerdictsResp resp;
      resp.session_id = id;
      resp.first_point_id = chunk[begin].id;
      resp.verdicts.assign(
          std::make_move_iterator(result.verdicts.begin() +
                                  static_cast<std::ptrdiff_t>(begin)),
          std::make_move_iterator(result.verdicts.begin() +
                                  static_cast<std::ptrdiff_t>(end)));
      const std::string payload = EncodeVerdicts(resp);
      Enqueue(conn, MsgType::kVerdicts, payload);
      SessionNetActivity activity;
      activity.bytes_out = kFrameHeaderBytes + payload.size();
      service_->RecordNetwork(id, activity);
      begin = end;
    }
  }
  pending.erase(pending.begin(), pending.begin() + static_cast<long>(pos));
  return ok;
}

void SpotServer::FlushAllPending() {
  for (auto& [fd, conn] : conns_) {
    if (conn->want_close) continue;
    for (auto& [id, pending] : conn->pending) {
      if (pending.empty()) continue;
      if (!ProcessPending(*conn, id, /*all=*/true)) break;
    }
    SyncPollerInterest(*conn);
  }
}

// ---------------------------------------------------------------- writes --

void SpotServer::Enqueue(Conn& conn, MsgType type,
                         const std::string& payload) {
  conn.outbuf.append(EncodeFrame(type, payload));
  ++stats_.frames_sent;
  TryFlush(conn);
  UpdateBackpressure(conn);
  SyncPollerInterest(conn);
}

void SpotServer::SendOk(Conn& conn, MsgType request) {
  OkResp resp{static_cast<std::uint8_t>(request)};
  Enqueue(conn, MsgType::kOk, EncodeOk(resp));
}

void SpotServer::SendError(Conn& conn, MsgType request,
                           const std::string& message) {
  ErrorResp resp;
  resp.request_type = static_cast<std::uint8_t>(request);
  resp.message = message;
  Enqueue(conn, MsgType::kError, EncodeError(resp));
}

void SpotServer::TryFlush(Conn& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Reclaim the sent prefix (mirroring FrameDecoder's read-side
        // bound): a connection whose queue never fully drains — e.g. a
        // consumer pacing itself around the backpressure threshold —
        // must not retain every verdict byte ever sent to it. Only past
        // a threshold, though: level-triggered epoll wakes us on every
        // sndbuf vacancy, and an unconditional erase would let a
        // byte-at-a-time consumer force an O(queued) memmove per byte
        // of progress. The memory bound holds amortized: outbuf never
        // exceeds the unsent bytes plus this threshold.
        constexpr std::size_t kOutbufReclaimBytes = 64 * 1024;
        if (conn.out_off >= kOutbufReclaimBytes) {
          conn.outbuf.erase(0, conn.out_off);
          conn.out_off = 0;
        }
        return;
      }
      // Peer is gone; drop the queue and let the deferred sweep close us.
      conn.outbuf.clear();
      conn.out_off = 0;
      conn.want_close = true;
      return;
    }
    conn.out_off += static_cast<std::size_t>(n);
    stats_.bytes_out += static_cast<std::uint64_t>(n);
  }
  conn.outbuf.clear();
  conn.out_off = 0;
}

void SpotServer::UpdateBackpressure(Conn& conn) {
  const std::size_t queued = conn.outbuf.size() - conn.out_off;
  if (!conn.paused && queued > config_.max_output_bytes) {
    conn.paused = true;
    ++stats_.backpressure_stalls;
    SessionNetActivity activity;
    activity.backpressure_stalls = 1;
    for (const std::string& id : conn.sessions) {
      service_->RecordNetwork(id, activity);
    }
  } else if (conn.paused && queued < config_.max_output_bytes / 2) {
    conn.paused = false;
  }
}

void SpotServer::SyncPollerInterest(Conn& conn) {
  if (poller_ == nullptr || conns_.count(conn.fd) == 0) return;
  const bool want_read = !conn.paused && !conn.want_close;
  const bool want_write = conn.out_off < conn.outbuf.size();
  if (want_read != conn.poll_read || want_write != conn.poll_write) {
    conn.poll_read = want_read;
    conn.poll_write = want_write;
    poller_->Update(conn.fd, want_read, want_write);
  }
}

void SpotServer::WriteReady(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  TryFlush(conn);
  UpdateBackpressure(conn);
  if (conn.want_close && conn.out_off >= conn.outbuf.size()) {
    CloseConn(fd);
    return;
  }
  SyncPollerInterest(conn);
}

}  // namespace net
}  // namespace spot
