#include "net/reactor.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "common/log.h"
#include "common/timer.h"
#include "net/session_registry.h"
#include "service/spot_service.h"

namespace spot {
namespace net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

using MonoClock = std::chrono::steady_clock;

double MicrosSince(MonoClock::time_point t0) {
  return std::chrono::duration<double, std::micro>(MonoClock::now() - t0)
      .count();
}

}  // namespace

Reactor::Reactor(int index, const SpotServerConfig& config,
                 SpotService* service, SessionRegistry* registry,
                 const std::atomic<bool>* stop)
    : index_(index),
      config_(config),
      service_(service),
      registry_(registry),
      stop_(stop) {}

Reactor::~Reactor() { Shutdown(); }

bool Reactor::Init() {
  poller_ = Poller::Create(config_.use_epoll);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    SPOT_LOG(Error) << "reactor " << index_
                    << ": pipe(): " << std::strerror(errno);
    return false;
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
  if (!SetNonBlocking(wake_rd_) || !SetNonBlocking(wake_wr_)) {
    return false;
  }
  poller_->Add(wake_rd_, /*read=*/true, /*write=*/false);
  return true;
}

void Reactor::AdoptListener(int fd, bool acceptor,
                            std::vector<Reactor*> handoff_targets) {
  listen_fd_ = fd;
  acceptor_ = acceptor;
  handoff_targets_ = std::move(handoff_targets);
  poller_->Add(listen_fd_, /*read=*/true, /*write=*/false);
}

void Reactor::SetObservability(obs::MetricsHub* hub,
                               std::function<StatsResp()> stats_source) {
  hub_ = hub;
  stats_source_ = std::move(stats_source);
}

void Reactor::SetTracing(obs::TraceRecorder* recorder,
                         std::function<std::string()> trace_source) {
  trace_ = recorder;
  trace_source_ = std::move(trace_source);
}

void Reactor::Run() {
  while (RunOnce(config_.poll_interval_ms)) {
  }
  Shutdown();
}

bool Reactor::RunOnce(int timeout_ms) {
  if (stopping() || poller_ == nullptr || shutdown_done_) return false;
  if (config_.profile_counters && perf_group_ == nullptr) {
    // Opened here — on the loop thread — rather than in Init(), which
    // runs on the server's starting thread: a perf_event group counts
    // the thread that opened it.
    perf_group_ = obs::PerfCounterGroup::Open();
  }
  std::vector<Poller::Event> events;
  if (poller_->Wait(timeout_ms, &events) < 0) {
    SPOT_LOG(Error) << "reactor " << index_
                    << ": event wait failed: " << std::strerror(errno);
    return false;
  }
  if (listener_paused_) {
    // Re-arm the listener paused by an fd-exhausted accept. This must
    // happen AFTER a Wait, not before it: re-arming first would put the
    // still-unaccepted connection right back into the wait set, making
    // it return immediately and turning the "pause" into a hot
    // accept/EMFILE spin. Waiting once without the listener restores
    // the idle cadence the pause exists to protect — and since the flag
    // and the listener are this reactor's own, a paused shard never
    // touches (or stalls) any other reactor's accepts.
    poller_->Add(listen_fd_, /*read=*/true, /*write=*/false);
    listener_paused_ = false;
  }
  for (const Poller::Event& ev : events) {
    if (ev.fd == wake_rd_) {
      DrainIntake();
      continue;
    }
    if (ev.fd == listen_fd_) {
      AcceptReady();
      continue;
    }
    if (ev.error && conns_.count(ev.fd) > 0) {
      CloseConn(ev.fd);
      continue;
    }
    if (ev.readable) ReadReady(ev.fd);
    if (ev.writable) WriteReady(ev.fd);  // re-checks liveness itself
  }
  // End-of-turn batch cut: whatever points arrived together in this turn
  // are processed together (the coalescing the protocol is built around).
  FlushAllPending();
  // Deferred closes: connections marked want_close go once their output
  // drained (or their socket broke).
  std::vector<int> doomed;
  for (const auto& [fd, conn] : conns_) {
    if (conn->want_close && conn->out_off >= conn->outbuf.size()) {
      doomed.push_back(fd);
    }
  }
  for (int fd : doomed) CloseConn(fd);
  PublishMetrics();
  return !stopping();
}

void Reactor::PublishMetrics() {
  if (hub_ == nullptr) return;
  // Fold the plain loop counters into the registry so one snapshot
  // carries the whole reactor; Set (not Inc) because stats_ is itself
  // monotonic and already holds the running totals.
  obs_.GetCounter("connections_accepted")->Set(stats_.connections_accepted);
  obs_.GetCounter("connections_closed")->Set(stats_.connections_closed);
  obs_.GetCounter("frames_received")->Set(stats_.frames_received);
  obs_.GetCounter("frames_sent")->Set(stats_.frames_sent);
  obs_.GetCounter("bytes_in")->Set(stats_.bytes_in);
  obs_.GetCounter("bytes_out")->Set(stats_.bytes_out);
  obs_.GetCounter("corrupt_frames")->Set(stats_.corrupt_frames);
  obs_.GetCounter("protocol_errors")->Set(stats_.protocol_errors);
  obs_.GetCounter("backpressure_stalls")->Set(stats_.backpressure_stalls);
  obs_.GetCounter("batches_run")->Set(stats_.batches_run);
  obs_.GetCounter("points_ingested")->Set(stats_.points_ingested);
  obs_.GetCounter("listener_pauses")->Set(stats_.listener_pauses);
  obs_.GetCounter("unsupported_requests")->Set(stats_.unsupported_requests);
  std::size_t pending_points = 0;
  std::size_t queued_bytes = 0;
  for (const auto& [fd, conn] : conns_) {
    for (const auto& [id, pending] : conn->pending) {
      pending_points += pending.size();
    }
    queued_bytes += conn->outbuf.size() - conn->out_off;
  }
  obs_.GetGauge("connections")->Set(static_cast<double>(conns_.size()));
  obs_.GetGauge("pending_points")->Set(static_cast<double>(pending_points));
  obs_.GetGauge("outbound_queued_bytes")
      ->Set(static_cast<double>(queued_bytes));
  if (perf_group_ != nullptr) {
    obs::PublishPerfMode(&obs_, perf_group_.get());
    obs::PublishPerfTotals(&obs_, "stage=\"decode\"", perf_decode_);
    obs::PublishPerfTotals(&obs_, "stage=\"coalesce\"", perf_coalesce_);
    obs::PublishPerfTotals(&obs_, "stage=\"process\"", perf_process_);
    obs::PublishPerfTotals(&obs_, "stage=\"encode\"", perf_encode_);
    obs::PublishPerfTotals(&obs_, "stage=\"write\"", perf_write_);
    if (index_ == 0) {
      // Process-wide gauges once, not per reactor — and on a coarse
      // cadence: counting /proc/self/fd entries every loop turn is
      // measurable at high turn rates.
      const std::int64_t now_us =
          static_cast<std::int64_t>(SteadyMicrosSinceStart());
      if (now_us - last_process_gauges_us_ >= 500000) {
        last_process_gauges_us_ = now_us;
        obs::PublishProcessGauges(&obs_);
      }
    }
  }
  hub_->Publish(static_cast<std::size_t>(index_), obs_.Snapshot());
}

void Reactor::Shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  // Process every connection's pending points (they arrived; the engine
  // state must reflect them before the checkpoint), push what we can of
  // the outbound queues without blocking, and close.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    for (auto& [id, pending] : conn.pending) {
      if (!pending.empty()) ProcessPending(conn, id, /*all=*/true);
    }
    TryFlush(conn);
    CloseConn(fd);
  }
  if (listen_fd_ >= 0) {
    if (poller_ != nullptr) poller_->Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Accepted but never adopted connections just close.
    std::lock_guard<std::mutex> lock(intake_mu_);
    for (int fd : intake_) ::close(fd);
    intake_.clear();
  }
  if (wake_rd_ >= 0) {
    if (poller_ != nullptr) poller_->Remove(wake_rd_);
    ::close(wake_rd_);
    ::close(wake_wr_);
    wake_rd_ = wake_wr_ = -1;
  }
  poller_.reset();
  PublishMetrics();  // final snapshot covers the shutdown drain
  if (service_ != nullptr && !service_->config().checkpoint_dir.empty()) {
    if (service_->CheckpointAll()) {
      SPOT_LOG(Info) << "reactor " << index_
                     << " shutdown checkpoint: all sessions saved";
    } else {
      SPOT_LOG(Error) << "reactor " << index_
                      << " shutdown checkpoint failed for some sessions";
    }
  }
}

// ----------------------------------------------------------- connections --

void Reactor::EnqueueConn(int fd) {
  {
    std::lock_guard<std::mutex> lock(intake_mu_);
    intake_.push_back(fd);
  }
  // Wake the loop; a full pipe is fine — the byte already in it wakes us.
  const char byte = 1;
  (void)!::write(wake_wr_, &byte, 1);
}

void Reactor::DrainIntake() {
  char buf[64];
  while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
  }
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(intake_mu_);
    fds.swap(intake_);
  }
  for (int fd : fds) AdoptConn(fd);
}

void Reactor::AdoptConn(int fd) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->decoder = FrameDecoder(config_.max_payload_bytes);
  poller_->Add(fd, /*read=*/true, /*write=*/false);
  conns_.emplace(fd, std::move(conn));
  ++stats_.connections_accepted;
}

void Reactor::AcceptReady() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors with a connection still queued: the
        // level-triggered listen fd would re-fire every Wait and spin
        // this loop hot. Deregister it for one turn (RunOnce re-arms it)
        // so the degraded reactor keeps its idle cadence. Only THIS
        // reactor's listener pauses: other reactors own their own
        // listeners (SO_REUSEPORT mode) and keep accepting.
        SPOT_LOG(Error) << "reactor " << index_
                        << ": accept(): " << std::strerror(errno)
                        << "; pausing this reactor's listener for one turn";
        poller_->Remove(listen_fd_);
        listener_paused_ = true;
        ++stats_.listener_pauses;
      }
      return;  // EAGAIN or transient accept failure: try next turn
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                   sizeof(config_.sndbuf_bytes));
    }
    if (acceptor_ && !handoff_targets_.empty()) {
      // Hand-off mode: deal connections round-robin across all reactors
      // (deterministic placement — connection k lands on reactor k % N).
      Reactor* target =
          handoff_targets_[next_target_ % handoff_targets_.size()];
      ++next_target_;
      if (target != this) {
        target->EnqueueConn(fd);
        continue;
      }
    }
    AdoptConn(fd);
  }
}

void Reactor::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  // Points the client successfully delivered are part of the stream even
  // if it vanished before reading the verdicts: process them so the
  // session's engine state stays deterministic (the verdicts go nowhere).
  for (auto& [id, pending] : conn.pending) {
    if (!pending.empty()) ProcessPending(conn, id, /*all=*/true);
  }
  DetachSessions(conn);
  if (poller_ != nullptr) poller_->Remove(fd);
  ::close(fd);
  conns_.erase(it);
  ++stats_.connections_closed;
}

void Reactor::AttachLocal(Conn& conn, const std::string& id) {
  session_owner_[id] = conn.fd;
  conn.sessions.push_back(id);
}

void Reactor::DetachSessions(Conn& conn) {
  for (const std::string& id : conn.sessions) {
    session_owner_.erase(id);
    // The session stays home on this reactor's shard, unattached; a
    // later resume from any reactor re-attaches (or hands it off).
    registry_->Detach(id, index_, conn.fd);
  }
  conn.sessions.clear();
  conn.pending.clear();
}

// ----------------------------------------------------------------- reads --

void Reactor::ReadReady(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  char buf[65536];
  while (!conn.paused && !conn.want_close) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      CloseConn(fd);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(fd);
      return;
    }
    stats_.bytes_in += static_cast<std::uint64_t>(n);
    conn.decoder.Append(buf, static_cast<std::size_t>(n));
    Frame frame;
    while (!conn.want_close) {
      const MonoClock::time_point decode_start = MonoClock::now();
      const std::uint64_t trace_t0 =
          trace_ != nullptr ? SteadyMicrosSinceStart() : 0;
      obs::ScopedCounters decode_perf(perf_group_.get(), &perf_decode_);
      const FrameDecoder::Status status = conn.decoder.Next(&frame);
      if (status == FrameDecoder::Status::kFrame) {
        decode_perf.set_units(1);  // one whole frame decoded
        h_decode_us_->Record(MicrosSince(decode_start));
        if (trace_ != nullptr) {
          obs::TraceEvent span;
          span.stage = obs::TraceStage::kDecode;
          span.ts_us = trace_t0;
          span.dur_us = SteadyMicrosSinceStart() - trace_t0;
          span.points = frame.payload.size();  // bytes for byte stages
          trace_->Record(span);
        }
      } else {
        // Incomplete or corrupt attempts would skew per-frame rates.
        decode_perf.Cancel();
      }
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kCorrupt) {
        // The byte stream cannot be resynchronized mid-frame: drop the
        // connection. (Sessions stay intact; the client can reconnect.)
        ++stats_.corrupt_frames;
        SPOT_LOG(Error) << "closing connection " << fd << ": "
                        << conn.decoder.error();
        CloseConn(fd);
        return;
      }
      ++stats_.frames_received;
      // Version negotiation is per-connection and monotone: the highest
      // version the peer ever stamps is what replies are capped to
      // (together with our own config_.wire_version).
      if (frame.version > conn.peer_version) {
        conn.peer_version = frame.version;
      }
      if (!HandleFrame(conn, frame)) {
        // Response (if any) is queued; close once it drains.
        conn.want_close = true;
      }
    }
  }
  SyncPollerInterest(conn);
}

bool Reactor::HandleFrame(Conn& conn, const Frame& frame) {
  const std::uint8_t type = static_cast<std::uint8_t>(frame.type);
  // Three tiers of request-type acceptance (DESIGN.md Section 11):
  // supported at this server's wire version -> serviced; plausible but
  // not supported (a future request type, or a v3 type on a server
  // running with wire_version == 2) -> refused with a cause and the
  // connection stays open (the negotiation escape hatch clients degrade
  // through); implausible (a response-role type on the request stream)
  // -> protocol violation, refused and closed.
  const bool supported =
      IsRequestType(type) &&
      !(config_.wire_version < 3 && (frame.type == MsgType::kFeedback ||
                                     frame.type == MsgType::kQueryTopK));
  if (!supported) {
    if (IsPlausibleRequestType(type)) {
      ++stats_.unsupported_requests;
      SendError(conn, frame.type, ErrorCode::kUnsupportedRequest,
                "request type " + std::to_string(type) +
                    " is not supported by this server (wire v" +
                    std::to_string(config_.wire_version) + ")");
      return true;
    }
    ++stats_.protocol_errors;
    SendError(conn, frame.type, ErrorCode::kUnsupportedRequest,
              "unexpected non-request frame");
    return false;
  }
  switch (frame.type) {
    case MsgType::kCreateSession: {
      CreateSessionReq req;
      if (!DecodeCreateSession(frame.payload, &req)) break;
      std::string error;
      ErrorCode code = ErrorCode::kUnknown;
      if (!registry_->BeginCreate(req.session_id, index_, conn.fd, &error,
                                  &code)) {
        SendError(conn, frame.type, code, error);
        return true;
      }
      // Learn() runs outside the registry lock — only this id is
      // reserved meanwhile, other reactors' lifecycles proceed.
      if (!service_->CreateSession(req.session_id, req.config,
                                   req.training)) {
        registry_->Forget(req.session_id);
        SendError(conn, frame.type, ErrorCode::kLearnFailed,
                  "CreateSession('" + req.session_id +
                      "') failed (invalid id, config or training)");
        return true;
      }
      AttachLocal(conn, req.session_id);
      SendOk(conn, frame.type);
      return true;
    }
    case MsgType::kResumeSession: {
      ResumeSessionReq req;
      if (!DecodeResumeSession(frame.payload, &req)) break;
      std::string error;
      ErrorCode code = ErrorCode::kUnknown;
      if (!registry_->Attach(req.session_id, index_, conn.fd, &error,
                             &code)) {
        SendError(conn, frame.type, code, error);
        return true;
      }
      if (std::find(conn.sessions.begin(), conn.sessions.end(),
                    req.session_id) == conn.sessions.end()) {
        AttachLocal(conn, req.session_id);
      }
      SendOk(conn, frame.type);
      return true;
    }
    case MsgType::kIngest:
      if (HandleIngest(conn, frame.payload)) return true;
      return !conn.want_close;  // ingest errors close (stream ordering)
    case MsgType::kFlush: {
      FlushReq req;
      if (!DecodeFlush(frame.payload, &req)) break;
      if (!req.session_id.empty() &&
          !RequireAttached(conn, frame.type, req.session_id)) {
        return true;
      }
      bool ok = true;
      for (auto& [id, pending] : conn.pending) {
        if (!req.session_id.empty() && id != req.session_id) continue;
        if (!pending.empty()) ok &= ProcessPending(conn, id, /*all=*/true);
      }
      if (!ok) return false;  // ProcessPending queued the error
      SendOk(conn, frame.type);
      return true;
    }
    case MsgType::kCheckpoint: {
      CheckpointReq req;
      if (!DecodeCheckpoint(frame.payload, &req)) break;
      // A checkpoint must cover every point this connection delivered.
      for (auto& [id, pending] : conn.pending) {
        if (!pending.empty() && !ProcessPending(conn, id, /*all=*/true)) {
          return false;
        }
      }
      // An empty id checkpoints this reactor's shard — which covers
      // every session this connection can reach (sessions are pinned to
      // their connection's reactor).
      const bool ok = req.session_id.empty()
                          ? service_->CheckpointAll()
                          : service_->Checkpoint(req.session_id);
      if (ok) {
        SendOk(conn, frame.type);
      } else {
        SendError(conn, frame.type, ErrorCode::kCheckpointFailed,
                  "checkpoint failed");
      }
      return true;
    }
    case MsgType::kStats: {
      // A metrics scrape: answerable on any connection, session or not,
      // and deliberately side-effect-free on the ingest pipeline — it
      // does not cut batches, touch coalescing buffers or the service,
      // so verdicts are bit-identical with and without scrapes. The
      // request carries no payload; anything else is malformed and
      // falls through to the close-the-connection path below.
      if (!frame.payload.empty()) break;
      if (!stats_source_) {
        SendError(conn, frame.type, ErrorCode::kStatsUnavailable,
                  "stats not available on this server");
        return true;
      }
      // Publish our own registry first so the snapshot reflects this
      // very turn; other reactors are at most one loop turn stale.
      c_stats_scrapes_->Inc();
      PublishMetrics();
      Enqueue(conn, MsgType::kStatsResp, EncodeStats(stats_source_()));
      return true;
    }
    case MsgType::kTraceDump: {
      // A flight-recorder dump: like kStats, answerable on any connection
      // and side-effect-free on the ingest pipeline (the rings are read
      // under their own locks; nothing is cut or cleared). Empty payload
      // required; anything else is malformed and closes the connection.
      if (!frame.payload.empty()) break;
      if (!trace_source_) {
        SendError(conn, frame.type, ErrorCode::kTracingDisabled,
                  "tracing not enabled on this server");
        return true;
      }
      c_trace_dumps_->Inc();
      Enqueue(conn, MsgType::kTraceResp, trace_source_());
      return true;
    }
    case MsgType::kCloseSession: {
      CloseSessionReq req;
      if (!DecodeCloseSession(frame.payload, &req)) break;
      if (!RequireAttached(conn, frame.type, req.session_id)) return true;
      auto pending = conn.pending.find(req.session_id);
      if (pending != conn.pending.end() && !pending->second.empty() &&
          !ProcessPending(conn, req.session_id, /*all=*/true)) {
        return false;
      }
      if (!service_->CloseSession(req.session_id, req.persist)) {
        SendError(conn, frame.type, ErrorCode::kCheckpointFailed,
                  "CloseSession('" + req.session_id + "') failed");
        return true;
      }
      registry_->Forget(req.session_id);
      session_owner_.erase(req.session_id);
      conn.sessions.erase(std::find(conn.sessions.begin(),
                                    conn.sessions.end(), req.session_id));
      conn.pending.erase(req.session_id);
      SendOk(conn, frame.type);
      return true;
    }
    case MsgType::kFeedback: {
      FeedbackReq req;
      if (!DecodeFeedback(frame.payload, &req)) break;
      if (!RequireAttached(conn, frame.type, req.session_id)) return true;
      // Batch-boundary barrier: every point this connection already
      // delivered for the session is processed before the round, so the
      // detector's tick and RNG stream sit at exactly the position the
      // in-process reference reaches before its own ApplyFeedback —
      // that positional identity is what makes the differential
      // bit-identity guarantee hold (DESIGN.md Section 11).
      auto pending = conn.pending.find(req.session_id);
      if (pending != conn.pending.end() && !pending->second.empty() &&
          !ProcessPending(conn, req.session_id, /*all=*/true)) {
        return false;
      }
      std::string error;
      if (!service_->ApplyFeedback(req.session_id, req.point_ids,
                                   req.examples, &error)) {
        SendError(conn, frame.type, ErrorCode::kFeedbackFailed, error);
        return true;
      }
      SendOk(conn, frame.type);
      return true;
    }
    case MsgType::kQueryTopK: {
      QueryTopKReq req;
      if (!DecodeQueryTopK(frame.payload, &req)) break;
      if (!RequireAttached(conn, frame.type, req.session_id)) return true;
      // Same barrier as kFeedback: the query answers "after everything
      // you sent so far", never a mid-batch snapshot.
      auto pending = conn.pending.find(req.session_id);
      if (pending != conn.pending.end() && !pending->second.empty() &&
          !ProcessPending(conn, req.session_id, /*all=*/true)) {
        return false;
      }
      TopKResp resp;
      resp.session_id = req.session_id;
      std::string error;
      if (!service_->QueryTopK(req.session_id, req.k, &resp.entries,
                               &error)) {
        SendError(conn, frame.type, ErrorCode::kSessionUnknown, error);
        return true;
      }
      Enqueue(conn, MsgType::kTopKResp, EncodeTopK(resp));
      return true;
    }
    default:
      break;
  }
  ++stats_.protocol_errors;
  SendError(conn, frame.type, ErrorCode::kMalformedPayload,
            "malformed request payload");
  return false;
}

bool Reactor::HandleIngest(Conn& conn, const std::string& payload) {
  const MonoClock::time_point coalesce_start = MonoClock::now();
  const std::uint64_t trace_t0 =
      trace_ != nullptr ? SteadyMicrosSinceStart() : 0;
  obs::ScopedCounters coalesce_perf(perf_group_.get(), &perf_coalesce_);
  IngestReq req;
  if (!DecodeIngest(payload, &req)) {
    coalesce_perf.Cancel();
    ++stats_.protocol_errors;
    SendError(conn, MsgType::kIngest, ErrorCode::kMalformedPayload,
              "malformed ingest payload");
    conn.want_close = true;
    return false;
  }
  if (!RequireAttached(conn, MsgType::kIngest, req.session_id)) {
    coalesce_perf.Cancel();
    conn.want_close = true;
    return false;
  }
  std::vector<DataPoint>& pending = conn.pending[req.session_id];
  const std::size_t frame_points = req.points.size();
  pending.insert(pending.end(),
                 std::make_move_iterator(req.points.begin()),
                 std::make_move_iterator(req.points.end()));
  SessionNetActivity activity;
  activity.frames_received = 1;
  activity.bytes_in = kFrameHeaderBytes + payload.size();
  activity.queue_depth = pending.size();
  service_->RecordNetwork(req.session_id, activity);
  // Coalesce stage ends here; the early batch cut below is accounted to
  // the process stage by ProcessPending itself.
  coalesce_perf.set_units(frame_points);
  coalesce_perf.Commit();
  h_coalesce_us_->Record(MicrosSince(coalesce_start));
  if (trace_ != nullptr) {
    obs::TraceEvent span;
    span.stage = obs::TraceStage::kCoalesce;
    span.ts_us = trace_t0;
    span.dur_us = SteadyMicrosSinceStart() - trace_t0;
    span.points = frame_points;
    span.session = req.session_id;
    trace_->Record(span);
  }
  // Early batch cut: keep memory bounded when a client pipelines far
  // ahead; the remainder rides the end-of-turn flush.
  if (pending.size() >= config_.batch_points) {
    return ProcessPending(conn, req.session_id, /*all=*/false);
  }
  return true;
}

// --------------------------------------------------------------- batches --

bool Reactor::ProcessPending(Conn& conn, const std::string& id, bool all) {
  std::vector<DataPoint>& pending = conn.pending[id];
  // Consume by index and erase the prefix once at the end: erasing per
  // chunk would shift the whole remainder every iteration, turning one
  // large coalesced backlog into quadratic work inside the event loop.
  std::size_t pos = 0;
  bool ok = true;
  const std::size_t batch_points =
      config_.batch_points == 0 ? 1 : config_.batch_points;
  while (pending.size() - pos >= (all ? 1 : batch_points)) {
    const std::size_t n = std::min(pending.size() - pos, batch_points);
    std::vector<DataPoint> chunk;
    chunk.reserve(n);
    std::move(pending.begin() + static_cast<long>(pos),
              pending.begin() + static_cast<long>(pos + n),
              std::back_inserter(chunk));
    pos += n;
    // Batch correlation key: reactor index in the top 16 bits, a
    // per-reactor sequence below — globally unique, 0 never issued. The
    // process, shard_probe and encode spans of this chunk all carry it.
    const std::uint64_t batch_id =
        (static_cast<std::uint64_t>(index_) << 48) | next_batch_seq_++;
    const MonoClock::time_point process_start = MonoClock::now();
    const std::uint64_t trace_t0 =
        trace_ != nullptr ? SteadyMicrosSinceStart() : 0;
    IngestResult result;
    {
      // The engine's own bin/probe scopes nest inside this one (snapshot
      // deltas — each measures exactly its own window).
      obs::ScopedCounters process_perf(perf_group_.get(), &perf_process_);
      process_perf.set_units(n);
      result = service_->Ingest(id, chunk);
    }
    const double process_us = MicrosSince(process_start);
    h_process_us_->Record(process_us);
    h_batch_points_->Record(static_cast<double>(n));
    if (trace_ != nullptr) {
      obs::TraceEvent span;
      span.stage = obs::TraceStage::kProcess;
      span.ts_us = trace_t0;
      span.dur_us = SteadyMicrosSinceStart() - trace_t0;
      span.batch_id = batch_id;
      span.points = n;
      span.session = id;
      trace_->Record(span);
      // Per-shard probe lanes (present only when the service collects
      // shard timings): already in the shared steady-µs timebase.
      for (std::size_t k = 0; k < result.shard_spans.size(); ++k) {
        obs::TraceEvent shard_span;
        shard_span.stage = obs::TraceStage::kShardProbe;
        shard_span.ts_us = result.shard_spans[k].start_us;
        shard_span.dur_us = result.shard_spans[k].dur_us;
        shard_span.batch_id = batch_id;
        shard_span.shard = static_cast<std::int32_t>(k);
        shard_span.session = id;
        trace_->Record(shard_span);
      }
    }
    if (config_.slow_batch_warn_ms > 0.0 &&
        process_us > config_.slow_batch_warn_ms * 1e3) {
      c_slow_batches_->Inc();
      SPOT_LOG(Warning) << "reactor " << index_ << ": slow batch: session '"
                        << id << "', " << n << " points took "
                        << process_us / 1e3 << " ms (threshold "
                        << config_.slow_batch_warn_ms << " ms)";
    }
    if (!result.ok) {
      SendError(conn, MsgType::kIngest, ErrorCode::kIngestFailed,
                "Ingest('" + id + "') failed at the service");
      conn.want_close = true;
      ok = false;
      break;
    }
    ++stats_.batches_run;
    stats_.points_ingested += n;
    // A large coalesced run's verdicts can encode past the wire payload
    // cap (13 bytes per verdict + 32 per finding), which the client's
    // decoder would latch as corrupt. Split the run into as many
    // kVerdicts frames as the cap requires — protocol-legal (verdicts
    // arrive "batched however the server coalesced them") with
    // first_point_id kept accurate per frame.
    const std::size_t header_bytes = 4 + id.size() + 8 + 4;
    std::size_t begin = 0;
    while (begin < result.verdicts.size()) {
      std::size_t bytes = header_bytes;
      std::size_t end = begin;
      while (end < result.verdicts.size()) {
        const std::size_t vbytes =
            13 + 32 * result.verdicts[end].findings.size();
        if (end > begin && bytes + vbytes > config_.max_payload_bytes) {
          break;
        }
        bytes += vbytes;
        ++end;
      }
      VerdictsResp resp;
      resp.session_id = id;
      resp.first_point_id = chunk[begin].id;
      resp.verdicts.assign(
          std::make_move_iterator(result.verdicts.begin() +
                                  static_cast<std::ptrdiff_t>(begin)),
          std::make_move_iterator(result.verdicts.begin() +
                                  static_cast<std::ptrdiff_t>(end)));
      const MonoClock::time_point encode_start = MonoClock::now();
      const std::uint64_t encode_t0 =
          trace_ != nullptr ? SteadyMicrosSinceStart() : 0;
      obs::ScopedCounters encode_perf(perf_group_.get(), &perf_encode_);
      encode_perf.set_units(resp.verdicts.size());
      const std::string payload = EncodeVerdicts(resp);
      encode_perf.Commit();
      h_encode_us_->Record(MicrosSince(encode_start));
      if (trace_ != nullptr) {
        obs::TraceEvent span;
        span.stage = obs::TraceStage::kEncode;
        span.ts_us = encode_t0;
        span.dur_us = SteadyMicrosSinceStart() - encode_t0;
        span.batch_id = batch_id;
        span.points = resp.verdicts.size();
        span.session = id;
        trace_->Record(span);
      }
      Enqueue(conn, MsgType::kVerdicts, payload);
      SessionNetActivity activity;
      activity.bytes_out = kFrameHeaderBytes + payload.size();
      service_->RecordNetwork(id, activity);
      begin = end;
    }
  }
  pending.erase(pending.begin(), pending.begin() + static_cast<long>(pos));
  return ok;
}

void Reactor::FlushAllPending() {
  for (auto& [fd, conn] : conns_) {
    if (conn->want_close) continue;
    for (auto& [id, pending] : conn->pending) {
      if (pending.empty()) continue;
      if (!ProcessPending(*conn, id, /*all=*/true)) break;
    }
    SyncPollerInterest(*conn);
  }
}

// ---------------------------------------------------------------- writes --

std::uint8_t Reactor::ReplyVersion(const Conn& conn) const {
  return std::min(conn.peer_version, config_.wire_version);
}

bool Reactor::RequireAttached(Conn& conn, MsgType request,
                              const std::string& id) {
  auto owner = session_owner_.find(id);
  if (owner != session_owner_.end() && owner->second == conn.fd) {
    return true;
  }
  SendError(conn, request, ErrorCode::kNotAttached,
            "session '" + id + "' is not attached to this connection");
  return false;
}

void Reactor::Enqueue(Conn& conn, MsgType type, const std::string& payload) {
  conn.outbuf.append(EncodeFrame(type, payload, ReplyVersion(conn)));
  ++stats_.frames_sent;
  TryFlush(conn);
  UpdateBackpressure(conn);
  SyncPollerInterest(conn);
}

void Reactor::SendOk(Conn& conn, MsgType request) {
  OkResp resp{static_cast<std::uint8_t>(request)};
  Enqueue(conn, MsgType::kOk, EncodeOk(resp));
}

void Reactor::SendError(Conn& conn, MsgType request, ErrorCode code,
                        const std::string& message) {
  ErrorResp resp;
  resp.request_type = static_cast<std::uint8_t>(request);
  resp.code = code;
  resp.message = message;
  // The kError payload layout follows the frame version (a v2 peer gets
  // the code-less v2 layout), which is why the encode and the Enqueue
  // below must agree on ReplyVersion.
  Enqueue(conn, MsgType::kError, EncodeError(resp, ReplyVersion(conn)));
}

void Reactor::TryFlush(Conn& conn) {
  if (conn.out_off >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
    return;
  }
  obs::ScopedLatency write_timer(h_write_us_);
  obs::ScopedCounters write_perf(perf_group_.get(), &perf_write_);
  if (trace_ == nullptr) {
    write_perf.set_units(WriteLoop(conn));  // bytes for byte stages
    return;
  }
  const std::uint64_t trace_t0 = SteadyMicrosSinceStart();
  const std::size_t sent = WriteLoop(conn);
  write_perf.set_units(sent);
  if (sent > 0) {
    obs::TraceEvent span;
    span.stage = obs::TraceStage::kWrite;
    span.ts_us = trace_t0;
    span.dur_us = SteadyMicrosSinceStart() - trace_t0;
    span.points = sent;  // bytes for byte stages
    trace_->Record(span);
  }
}

std::size_t Reactor::WriteLoop(Conn& conn) {
  std::size_t sent = 0;
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Reclaim the sent prefix (mirroring FrameDecoder's read-side
        // bound): a connection whose queue never fully drains — e.g. a
        // consumer pacing itself around the backpressure threshold —
        // must not retain every verdict byte ever sent to it. Only past
        // a threshold, though: level-triggered epoll wakes us on every
        // sndbuf vacancy, and an unconditional erase would let a
        // byte-at-a-time consumer force an O(queued) memmove per byte
        // of progress. The memory bound holds amortized: outbuf never
        // exceeds the unsent bytes plus this threshold.
        constexpr std::size_t kOutbufReclaimBytes = 64 * 1024;
        if (conn.out_off >= kOutbufReclaimBytes) {
          conn.outbuf.erase(0, conn.out_off);
          conn.out_off = 0;
        }
        return sent;
      }
      // Peer is gone; drop the queue and let the deferred sweep close us.
      conn.outbuf.clear();
      conn.out_off = 0;
      conn.want_close = true;
      return sent;
    }
    conn.out_off += static_cast<std::size_t>(n);
    stats_.bytes_out += static_cast<std::uint64_t>(n);
    sent += static_cast<std::size_t>(n);
  }
  conn.outbuf.clear();
  conn.out_off = 0;
  return sent;
}

void Reactor::UpdateBackpressure(Conn& conn) {
  const std::size_t queued = conn.outbuf.size() - conn.out_off;
  if (!conn.paused && queued > config_.max_output_bytes) {
    conn.paused = true;
    ++stats_.backpressure_stalls;
    SessionNetActivity activity;
    activity.backpressure_stalls = 1;
    for (const std::string& id : conn.sessions) {
      service_->RecordNetwork(id, activity);
    }
  } else if (conn.paused && queued < config_.max_output_bytes / 2) {
    conn.paused = false;
  }
}

void Reactor::SyncPollerInterest(Conn& conn) {
  if (poller_ == nullptr || conns_.count(conn.fd) == 0) return;
  const bool want_read = !conn.paused && !conn.want_close;
  const bool want_write = conn.out_off < conn.outbuf.size();
  if (want_read != conn.poll_read || want_write != conn.poll_write) {
    conn.poll_read = want_read;
    conn.poll_write = want_write;
    poller_->Update(conn.fd, want_read, want_write);
  }
}

void Reactor::WriteReady(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  TryFlush(conn);
  UpdateBackpressure(conn);
  if (conn.want_close && conn.out_off >= conn.outbuf.size()) {
    CloseConn(fd);
    return;
  }
  SyncPollerInterest(conn);
}

}  // namespace net
}  // namespace spot
