#include "net/spot_client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <utility>

#include "common/log.h"

namespace spot {
namespace net {

SpotClient::~SpotClient() { Disconnect(); }

RpcStatus SpotClient::Finish(bool ok) {
  if (ok) return RpcStatus::Success();
  return RpcStatus::Failure(last_code_, last_error_);
}

RpcStatus SpotClient::Connect(const std::string& host, std::uint16_t port) {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    FailTransport(std::string("socket(): ") + std::strerror(errno));
    return Finish(false);
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    FailInvalid("bad host '" + host + "' (IPv4 dotted quad expected)");
    return Finish(false);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what = std::string("connect(): ") +
                             std::strerror(errno);
    Disconnect();
    FailTransport(what);
    return Finish(false);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  decoder_ = FrameDecoder(max_payload_);
  stash_.clear();
  outstanding_.clear();
  last_error_.clear();
  last_code_ = ErrorCode::kUnknown;
  return RpcStatus::Success();
}

void SpotClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SpotClient::FailTransport(const std::string& what) {
  last_error_ = what;
  last_code_ = ErrorCode::kTransport;
  Disconnect();
}

void SpotClient::FailInvalid(const std::string& what) {
  last_error_ = what;
  last_code_ = ErrorCode::kInvalidArgument;
}

bool SpotClient::SendFrame(MsgType type, const std::string& payload) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    last_code_ = ErrorCode::kTransport;
    return false;
  }
  // A payload over the wire cap is connection-fatal server-side (the
  // frame decoder latches corrupt and closes); refuse to send it and
  // name the real cause instead, leaving the connection untouched.
  if (payload.size() > max_payload_) {
    FailInvalid("frame payload of " + std::to_string(payload.size()) +
                " bytes exceeds the " + std::to_string(max_payload_) +
                "-byte wire cap; split the batch (or set_max_payload to "
                "match a server with a raised cap)");
    return false;
  }
  const std::string wire = EncodeFrame(type, payload, wire_version_);
  std::size_t off = 0;
  while (off < wire.size()) {
    // Non-blocking sends, draining inbound verdicts whenever the socket
    // is write-full: the server's backpressure stops reading us once its
    // outbound queue fills, so a client wedged inside a blocking send —
    // never consuming the verdicts that would unwedge the server — would
    // deadlock both sides. Interleaving the drain here makes even a
    // single frame larger than every buffer involved make progress.
    const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!DrainPending()) return false;  // also detects peer close
        pollfd p{fd_, POLLIN | POLLOUT, 0};
        ::poll(&p, 1, 100);
        continue;
      }
      FailTransport(std::string("send(): ") + std::strerror(errno));
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_sent_ += wire.size();
  return true;
}

bool SpotClient::StashVerdicts(const Frame& frame) {
  VerdictsResp resp;
  if (!DecodeVerdicts(frame.payload, &resp)) {
    FailTransport("malformed verdicts frame from server");
    return false;
  }
  // Ordering sanity check against the ids we ingested (see outstanding_).
  std::deque<std::uint64_t>& pending = outstanding_[resp.session_id];
  if (!resp.verdicts.empty()) {
    if (resp.verdicts.size() > pending.size() ||
        pending.front() != resp.first_point_id) {
      FailTransport("verdict run out of order for session '" +
                    resp.session_id + "'");
      return false;
    }
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<long>(resp.verdicts.size()));
  }
  std::vector<SpotResult>& bucket = stash_[resp.session_id];
  bucket.insert(bucket.end(),
                std::make_move_iterator(resp.verdicts.begin()),
                std::make_move_iterator(resp.verdicts.end()));
  return true;
}

bool SpotClient::RecordServerError(const Frame& frame, MsgType request) {
  ErrorResp resp;
  if (!DecodeError(frame.payload, &resp, frame.version)) {
    FailTransport("malformed error frame from server");
    return false;
  }
  last_error_ = resp.message;
  last_code_ = resp.code;
  // Graceful degradation against pre-v3 servers (the kStats pattern,
  // DESIGN.md Section 11): a v2-layout refusal carries no code, but a
  // v2-dialect error answering a v3-only request *means* the request
  // type is beyond the server — surface it as the code the server would
  // have sent had it spoken v3.
  if (frame.version < 3 && last_code_ == ErrorCode::kUnknown &&
      (request == MsgType::kFeedback || request == MsgType::kQueryTopK)) {
    last_code_ = ErrorCode::kUnsupportedRequest;
  }
  return true;
}

bool SpotClient::ConsumeFrames(MsgType request, bool* done, bool* ok) {
  Frame frame;
  while (true) {
    const FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kNeedMore) return true;
    if (status == FrameDecoder::Status::kCorrupt) {
      FailTransport("corrupt frame from server: " + decoder_.error());
      return false;
    }
    switch (frame.type) {
      case MsgType::kVerdicts:
        if (!StashVerdicts(frame)) return false;
        break;
      case MsgType::kOk: {
        OkResp resp;
        if (!DecodeOk(frame.payload, &resp) ||
            resp.request_type != static_cast<std::uint8_t>(request)) {
          FailTransport("out-of-order Ok from server");
          return false;
        }
        *done = true;
        *ok = true;
        return true;
      }
      case MsgType::kError: {
        // Report the server's refusal whichever request it blames (an
        // ingest error surfaces at the next barrier).
        if (!RecordServerError(frame, request)) return false;
        *done = true;
        *ok = false;
        return true;
      }
      default:
        FailTransport("unexpected frame type from server");
        return false;
    }
  }
}

bool SpotClient::ConsumeStatsFrames(StatsResp* out, bool* done, bool* ok) {
  Frame frame;
  while (true) {
    const FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kNeedMore) return true;
    if (status == FrameDecoder::Status::kCorrupt) {
      FailTransport("corrupt frame from server: " + decoder_.error());
      return false;
    }
    switch (frame.type) {
      case MsgType::kVerdicts:
        if (!StashVerdicts(frame)) return false;
        break;
      case MsgType::kStatsResp:
        if (!DecodeStats(frame.payload, out)) {
          FailTransport("malformed stats frame from server");
          return false;
        }
        *done = true;
        *ok = true;
        return true;
      case MsgType::kError: {
        if (!RecordServerError(frame, MsgType::kStats)) return false;
        *done = true;
        *ok = false;
        return true;
      }
      default:
        FailTransport("unexpected frame type from server");
        return false;
    }
  }
}

bool SpotClient::ConsumeTraceFrames(std::string* json, bool* done,
                                    bool* ok) {
  Frame frame;
  while (true) {
    const FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kNeedMore) return true;
    if (status == FrameDecoder::Status::kCorrupt) {
      FailTransport("corrupt frame from server: " + decoder_.error());
      return false;
    }
    switch (frame.type) {
      case MsgType::kVerdicts:
        if (!StashVerdicts(frame)) return false;
        break;
      case MsgType::kTraceResp:
        // The payload IS the Chrome-trace JSON document — no codec.
        *json = std::move(frame.payload);
        *done = true;
        *ok = true;
        return true;
      case MsgType::kError: {
        if (!RecordServerError(frame, MsgType::kTraceDump)) return false;
        *done = true;
        *ok = false;
        return true;
      }
      default:
        FailTransport("unexpected frame type from server");
        return false;
    }
  }
}

bool SpotClient::ConsumeTopKFrames(const std::string& id,
                                   std::vector<TopKEntry>* out, bool* done,
                                   bool* ok) {
  Frame frame;
  while (true) {
    const FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kNeedMore) return true;
    if (status == FrameDecoder::Status::kCorrupt) {
      FailTransport("corrupt frame from server: " + decoder_.error());
      return false;
    }
    switch (frame.type) {
      case MsgType::kVerdicts:
        if (!StashVerdicts(frame)) return false;
        break;
      case MsgType::kTopKResp: {
        TopKResp resp;
        if (!DecodeTopK(frame.payload, &resp) || resp.session_id != id) {
          FailTransport("malformed top-k frame from server");
          return false;
        }
        *out = std::move(resp.entries);
        *done = true;
        *ok = true;
        return true;
      }
      case MsgType::kError: {
        if (!RecordServerError(frame, MsgType::kQueryTopK)) return false;
        *done = true;
        *ok = false;
        return true;
      }
      default:
        FailTransport("unexpected frame type from server");
        return false;
    }
  }
}

RpcStatus SpotClient::TraceDump(std::string* json) {
  json->clear();
  if (!SendFrame(MsgType::kTraceDump, std::string())) return Finish(false);
  if (fd_ < 0) {
    if (last_error_.empty()) FailTransport("not connected");
    return Finish(false);
  }
  bool done = false;
  bool ok = false;
  if (!ConsumeTraceFrames(json, &done, &ok)) return Finish(false);
  char buf[65536];
  while (!done) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      FailTransport("server closed the connection");
      return Finish(false);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      FailTransport(std::string("recv(): ") + std::strerror(errno));
      return Finish(false);
    }
    bytes_received_ += static_cast<std::uint64_t>(n);
    decoder_.Append(buf, static_cast<std::size_t>(n));
    if (!ConsumeTraceFrames(json, &done, &ok)) return Finish(false);
  }
  return Finish(ok);
}

RpcStatus SpotClient::Stats(StatsResp* out) {
  *out = StatsResp{};
  if (!SendFrame(MsgType::kStats, std::string())) return Finish(false);
  if (fd_ < 0) {
    if (last_error_.empty()) FailTransport("not connected");
    return Finish(false);
  }
  bool done = false;
  bool ok = false;
  if (!ConsumeStatsFrames(out, &done, &ok)) return Finish(false);
  char buf[65536];
  while (!done) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      FailTransport("server closed the connection");
      return Finish(false);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      FailTransport(std::string("recv(): ") + std::strerror(errno));
      return Finish(false);
    }
    bytes_received_ += static_cast<std::uint64_t>(n);
    decoder_.Append(buf, static_cast<std::size_t>(n));
    if (!ConsumeStatsFrames(out, &done, &ok)) return Finish(false);
  }
  return Finish(ok);
}

RpcStatus SpotClient::TopK(const std::string& id, std::uint32_t k,
                           std::vector<TopKEntry>* out) {
  out->clear();
  QueryTopKReq req;
  req.session_id = id;
  req.k = k;
  if (!SendFrame(MsgType::kQueryTopK, EncodeQueryTopK(req))) {
    return Finish(false);
  }
  if (fd_ < 0) {
    if (last_error_.empty()) FailTransport("not connected");
    return Finish(false);
  }
  bool done = false;
  bool ok = false;
  if (!ConsumeTopKFrames(id, out, &done, &ok)) return Finish(false);
  char buf[65536];
  while (!done) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      FailTransport("server closed the connection");
      return Finish(false);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      FailTransport(std::string("recv(): ") + std::strerror(errno));
      return Finish(false);
    }
    bytes_received_ += static_cast<std::uint64_t>(n);
    decoder_.Append(buf, static_cast<std::size_t>(n));
    if (!ConsumeTopKFrames(id, out, &done, &ok)) return Finish(false);
  }
  return Finish(ok);
}

bool SpotClient::DrainPending() {
  if (fd_ < 0) return false;
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) {
      FailTransport("server closed the connection");
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      FailTransport(std::string("recv(): ") + std::strerror(errno));
      return false;
    }
    bytes_received_ += static_cast<std::uint64_t>(n);
    decoder_.Append(buf, static_cast<std::size_t>(n));
  }
  // Only verdict frames can legitimately be in flight outside a barrier;
  // an Ok/Error here would be out of order and fails the transport.
  Frame frame;
  while (true) {
    const FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kNeedMore) return true;
    if (status == FrameDecoder::Status::kCorrupt) {
      FailTransport("corrupt frame from server: " + decoder_.error());
      return false;
    }
    if (frame.type == MsgType::kVerdicts) {
      if (!StashVerdicts(frame)) return false;
      continue;
    }
    if (frame.type == MsgType::kError) {
      // An asynchronous refusal (the server is about to close on us):
      // record its code + cause, then drop the transport.
      ErrorResp resp;
      if (DecodeError(frame.payload, &resp, frame.version)) {
        last_error_ = resp.message;
        last_code_ = resp.code == ErrorCode::kUnknown
                         ? ErrorCode::kTransport
                         : resp.code;
      } else {
        last_error_ = "malformed error frame from server";
        last_code_ = ErrorCode::kTransport;
      }
      Disconnect();
      return false;
    }
    FailTransport("unexpected frame type outside a barrier");
    return false;
  }
}

bool SpotClient::AwaitResponse(MsgType request) {
  if (fd_ < 0) {
    if (last_error_.empty()) FailTransport("not connected");
    return false;
  }
  bool done = false;
  bool ok = false;
  if (!ConsumeFrames(request, &done, &ok)) return false;
  char buf[65536];
  while (!done) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      FailTransport("server closed the connection");
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      FailTransport(std::string("recv(): ") + std::strerror(errno));
      return false;
    }
    bytes_received_ += static_cast<std::uint64_t>(n);
    decoder_.Append(buf, static_cast<std::size_t>(n));
    if (!ConsumeFrames(request, &done, &ok)) return false;
  }
  return ok;
}

RpcStatus SpotClient::CreateSession(
    const std::string& id, const SpotConfig& config,
    const std::vector<std::vector<double>>& training) {
  // The wire encodes the training matrix as rows * dims cells, so a
  // ragged matrix would produce a payload the server can only reject as
  // generically malformed (closing the connection). Fail fast here with
  // an error that names the offending row instead.
  for (std::size_t i = 0; i < training.size(); ++i) {
    if (training[i].size() != training.front().size()) {
      FailInvalid("ragged training matrix: row " + std::to_string(i) +
                  " has " + std::to_string(training[i].size()) +
                  " attributes, row 0 has " +
                  std::to_string(training.front().size()));
      return Finish(false);
    }
  }
  CreateSessionReq req;
  req.session_id = id;
  req.config = config;
  req.training = training;
  return Finish(
      SendFrame(MsgType::kCreateSession, EncodeCreateSession(req)) &&
      AwaitResponse(MsgType::kCreateSession));
}

RpcStatus SpotClient::ResumeSession(const std::string& id) {
  ResumeSessionReq req{id};
  return Finish(
      SendFrame(MsgType::kResumeSession, EncodeResumeSession(req)) &&
      AwaitResponse(MsgType::kResumeSession));
}

RpcStatus SpotClient::Ingest(const std::string& id,
                             const std::vector<DataPoint>& points) {
  // Same wire constraint as the training matrix: a batch mixing point
  // dimensions cannot be encoded; name the offender instead of letting
  // the server drop the connection on a malformed payload.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].values.size() != points.front().values.size()) {
      FailInvalid("mixed-dimension ingest batch: point " +
                  std::to_string(i) + " has " +
                  std::to_string(points[i].values.size()) +
                  " attributes, point 0 has " +
                  std::to_string(points.front().values.size()));
      return Finish(false);
    }
  }
  IngestReq req;
  req.session_id = id;
  req.points = points;
  if (!SendFrame(MsgType::kIngest, EncodeIngest(req))) {
    return Finish(false);
  }
  std::deque<std::uint64_t>& pending = outstanding_[id];
  for (const DataPoint& p : points) pending.push_back(p.id);
  // Opportunistic drain keeps the pipeline deadlock-free (see class doc).
  return Finish(DrainPending());
}

RpcStatus SpotClient::Flush(const std::string& id,
                            std::vector<SpotResult>* verdicts) {
  FlushReq req{id};
  if (!SendFrame(MsgType::kFlush, EncodeFlush(req)) ||
      !AwaitResponse(MsgType::kFlush)) {
    return Finish(false);
  }
  auto it = stash_.find(id);
  if (it != stash_.end()) {
    if (verdicts != nullptr) {
      verdicts->insert(verdicts->end(),
                       std::make_move_iterator(it->second.begin()),
                       std::make_move_iterator(it->second.end()));
    }
    stash_.erase(it);
  }
  return RpcStatus::Success();
}

RpcStatus SpotClient::Checkpoint(const std::string& id) {
  CheckpointReq req{id};
  return Finish(SendFrame(MsgType::kCheckpoint, EncodeCheckpoint(req)) &&
                AwaitResponse(MsgType::kCheckpoint));
}

RpcStatus SpotClient::Feedback(
    const std::string& id, const std::vector<std::uint64_t>& point_ids,
    const std::vector<std::vector<double>>& examples) {
  if (point_ids.empty() && examples.empty()) {
    FailInvalid("feedback carries no labels (no point ids, no examples)");
    return Finish(false);
  }
  // Rectangularity, like CreateSession's training matrix: the wire
  // carries one rows*dims block.
  for (std::size_t i = 0; i < examples.size(); ++i) {
    if (examples[i].size() != examples.front().size()) {
      FailInvalid("ragged feedback examples: row " + std::to_string(i) +
                  " has " + std::to_string(examples[i].size()) +
                  " attributes, row 0 has " +
                  std::to_string(examples.front().size()));
      return Finish(false);
    }
  }
  FeedbackReq req;
  req.session_id = id;
  req.point_ids = point_ids;
  req.examples = examples;
  return Finish(SendFrame(MsgType::kFeedback, EncodeFeedback(req)) &&
                AwaitResponse(MsgType::kFeedback));
}

RpcStatus SpotClient::CloseSession(const std::string& id, bool persist,
                                   std::vector<SpotResult>* verdicts) {
  CloseSessionReq req{id, persist};
  if (!SendFrame(MsgType::kCloseSession, EncodeCloseSession(req)) ||
      !AwaitResponse(MsgType::kCloseSession)) {
    return Finish(false);
  }
  auto it = stash_.find(id);
  if (it != stash_.end()) {
    if (verdicts != nullptr) {
      verdicts->insert(verdicts->end(),
                       std::make_move_iterator(it->second.begin()),
                       std::make_move_iterator(it->second.end()));
    }
    stash_.erase(it);
  }
  outstanding_.erase(id);  // the session is gone; drop its id queue
  return RpcStatus::Success();
}

}  // namespace net
}  // namespace spot
