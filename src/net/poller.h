#ifndef SPOT_NET_POLLER_H_
#define SPOT_NET_POLLER_H_

#include <memory>
#include <vector>

namespace spot {
namespace net {

/// Readiness-notification interface: epoll(7) on Linux, poll(2) elsewhere
/// (or when SpotServerConfig::use_epoll is off). Level-triggered in both
/// implementations, so a partially drained buffer simply re-reports. Each
/// reactor owns one Poller; instances are not thread-safe and must only
/// be touched from their reactor's loop thread.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  virtual ~Poller() = default;
  virtual bool Add(int fd, bool read, bool write) = 0;
  virtual void Update(int fd, bool read, bool write) = 0;
  virtual void Remove(int fd) = 0;
  /// Waits up to `timeout_ms`; fills `out`. Returns the event count, 0 on
  /// timeout, -1 on a wait error other than EINTR.
  virtual int Wait(int timeout_ms, std::vector<Event>* out) = 0;

  /// Builds the best available implementation: epoll when `use_epoll` and
  /// the platform supports it, the portable poll(2) loop otherwise.
  static std::unique_ptr<Poller> Create(bool use_epoll);
};

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_POLLER_H_
