#include "net/protocol.h"

#include <cstring>
#include <sstream>

#include "core/checkpoint.h"

namespace spot {
namespace net {

namespace {

/// The config section of a kCreateSession payload is the checkpoint
/// format's own config encoding (WriteConfigBinary / ReadConfigBinary), so
/// the wire carries every nested learning knob and the two serializers
/// cannot drift apart.
std::string ConfigBlob(const SpotConfig& config) {
  std::ostringstream out;
  CheckpointWriter w(&out);
  WriteConfigBinary(w, config);
  return out.str();
}

bool ParseConfigBlob(const std::string& blob, SpotConfig* out) {
  std::istringstream in(blob);
  CheckpointReader r(&in);
  return ReadConfigBinary(r, out) && r.ok();
}

}  // namespace

bool IsRequestType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MsgType::kCreateSession) &&
         type <= static_cast<std::uint8_t>(MsgType::kQueryTopK);
}

bool IsPlausibleRequestType(std::uint8_t type) {
  // [1, 15]: the request half of the type space. Types here that this
  // server does not implement get a kError(kUnsupportedRequest) reply;
  // anything outside is a protocol violation.
  return type >= static_cast<std::uint8_t>(MsgType::kCreateSession) &&
         type < static_cast<std::uint8_t>(MsgType::kOk);
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown:
      return "unknown";
    case ErrorCode::kSessionUnknown:
      return "session_unknown";
    case ErrorCode::kSessionExists:
      return "session_exists";
    case ErrorCode::kNotAttached:
      return "not_attached";
    case ErrorCode::kAttachedElsewhere:
      return "attached_elsewhere";
    case ErrorCode::kWrongHomeReactor:
      return "wrong_home_reactor";
    case ErrorCode::kUnsupportedRequest:
      return "unsupported_request";
    case ErrorCode::kMalformedPayload:
      return "malformed_payload";
    case ErrorCode::kLearnFailed:
      return "learn_failed";
    case ErrorCode::kIngestFailed:
      return "ingest_failed";
    case ErrorCode::kCheckpointFailed:
      return "checkpoint_failed";
    case ErrorCode::kStatsUnavailable:
      return "stats_unavailable";
    case ErrorCode::kTracingDisabled:
      return "tracing_disabled";
    case ErrorCode::kFeedbackFailed:
      return "feedback_failed";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kTransport:
      return "transport";
  }
  return "unknown";
}

std::uint32_t Crc32(const void* data, std::size_t len) {
  // Table-driven IEEE CRC-32 (reflected polynomial 0xEDB88320), the same
  // checksum zlib and PNG use; the table is built once on first use.
  static const std::uint32_t* kTable = [] {
    static std::uint32_t table[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------- writer --

void WireWriter::U16(std::uint16_t v) {
  buf_.push_back(static_cast<char>(v & 0xFF));
  buf_.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void WireWriter::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::F64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

// ---------------------------------------------------------------- reader --

std::uint8_t WireReader::U8() {
  if (failed_ || pos_ + 1 > len_) {
    failed_ = true;
    return 0;
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t WireReader::U16() {
  if (failed_ || pos_ + 2 > len_) {
    failed_ = true;
    return 0;
  }
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
                << (8 * i));
  }
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::U32() {
  if (failed_ || pos_ + 4 > len_) {
    failed_ = true;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::U64() {
  if (failed_ || pos_ + 8 > len_) {
    failed_ = true;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double WireReader::F64() {
  const std::uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::Str() {
  const std::uint32_t n = U32();
  if (failed_ || pos_ + n > len_) {
    failed_ = true;
    return std::string();
  }
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

bool WireReader::Fail() {
  failed_ = true;
  return false;
}

// ---------------------------------------------------------------- frames --

std::string EncodeFrame(MsgType type, const std::string& payload,
                        std::uint8_t version) {
  WireWriter w;
  w.U32(kFrameMagic);
  w.U8(version);
  w.U8(static_cast<std::uint8_t>(type));
  w.U16(0);  // flags
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(Crc32(payload.data(), payload.size()));
  std::string out = w.Take();
  out.append(payload);
  return out;
}

void FrameDecoder::Append(const char* data, std::size_t len) {
  if (corrupt_) return;
  buf_.append(data, len);
}

FrameDecoder::Status FrameDecoder::Corrupt(const std::string& reason) {
  corrupt_ = true;
  error_ = reason;
  return Status::kCorrupt;
}

void FrameDecoder::Reclaim() {
  if (off_ == 0) return;
  buf_.erase(0, off_);
  off_ = 0;
}

FrameDecoder::Status FrameDecoder::Next(Frame* out) {
  if (corrupt_) return Status::kCorrupt;
  if (buf_.size() - off_ < kFrameHeaderBytes) {
    Reclaim();
    return Status::kNeedMore;
  }
  WireReader header(buf_.data() + off_, kFrameHeaderBytes);
  const std::uint32_t magic = header.U32();
  const std::uint8_t version = header.U8();
  const std::uint8_t type = header.U8();
  const std::uint16_t flags = header.U16();
  const std::uint32_t payload_len = header.U32();
  const std::uint32_t payload_crc = header.U32();
  if (magic != kFrameMagic) return Corrupt("bad frame magic");
  if (version < kMinWireVersion || version > kWireVersion) {
    return Corrupt("unknown protocol version");
  }
  if (flags != 0) return Corrupt("non-zero reserved flags");
  if (payload_len > max_payload_) return Corrupt("oversized frame payload");
  if (buf_.size() - off_ < kFrameHeaderBytes + payload_len) {
    // Reclaim here too: a frame straddling the reader's recv chunks with
    // off_ > 0 would otherwise retain every byte this connection ever
    // sent (callers drain Next() to kNeedMore after each Append, so this
    // runs once per read batch and the buffer stays bounded by one
    // in-flight frame plus one read).
    Reclaim();
    return Status::kNeedMore;
  }
  const char* payload = buf_.data() + off_ + kFrameHeaderBytes;
  if (Crc32(payload, payload_len) != payload_crc) {
    return Corrupt("payload CRC mismatch");
  }
  out->type = static_cast<MsgType>(type);
  out->version = version;
  out->payload.assign(payload, payload_len);
  off_ += kFrameHeaderBytes + payload_len;
  if (off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  }
  return Status::kFrame;
}

// -------------------------------------------------------- request codecs --

std::string EncodeCreateSession(const CreateSessionReq& req) {
  WireWriter w;
  w.Str(req.session_id);
  w.Str(ConfigBlob(req.config));
  const std::uint32_t rows = static_cast<std::uint32_t>(req.training.size());
  const std::uint32_t dims =
      rows > 0 ? static_cast<std::uint32_t>(req.training.front().size()) : 0;
  w.U32(rows);
  w.U32(dims);
  for (const auto& row : req.training) {
    for (double v : row) w.F64(v);
  }
  return w.Take();
}

bool DecodeCreateSession(const std::string& payload, CreateSessionReq* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  const std::string blob = r.Str();
  if (!r.ok() || !ParseConfigBlob(blob, &out->config)) return r.Fail();
  const std::uint32_t rows = r.U32();
  const std::uint32_t dims = r.U32();
  if (!r.ok()) return false;
  // A training matrix that claims more cells than the payload holds would
  // be a corrupt (or hostile) length field; bound before allocating.
  // Divide instead of multiplying so a crafted rows*dims cannot wrap
  // mod 2^64 past the check, and reject zero-width rows outright (rows of
  // no attributes cost allocation but can never be valid training).
  if (rows > 0 && (dims == 0 || rows > payload.size() / (8ull * dims))) {
    return r.Fail();
  }
  out->training.assign(rows, std::vector<double>(dims));
  for (auto& row : out->training) {
    for (auto& v : row) v = r.F64();
  }
  return r.AtEnd();
}

std::string EncodeResumeSession(const ResumeSessionReq& req) {
  WireWriter w;
  w.Str(req.session_id);
  return w.Take();
}

bool DecodeResumeSession(const std::string& payload, ResumeSessionReq* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  return r.AtEnd();
}

std::string EncodeIngest(const IngestReq& req) {
  WireWriter w;
  w.Str(req.session_id);
  const std::uint32_t count = static_cast<std::uint32_t>(req.points.size());
  const std::uint32_t dims =
      count > 0
          ? static_cast<std::uint32_t>(req.points.front().values.size())
          : 0;
  w.U32(count);
  w.U32(dims);
  for (const auto& p : req.points) {
    w.U64(p.id);
    for (double v : p.values) w.F64(v);
  }
  return w.Take();
}

bool DecodeIngest(const std::string& payload, IngestReq* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  const std::uint32_t count = r.U32();
  const std::uint32_t dims = r.U32();
  if (!r.ok()) return false;
  // Each point occupies 8 + 8*dims bytes; divide (never multiply by the
  // untrusted count) so a crafted count*dims cannot wrap mod 2^64 past
  // this bound and force a huge allocation.
  if (count > payload.size() / (8ull + 8ull * dims)) {
    return r.Fail();
  }
  out->points.assign(count, DataPoint{});
  for (auto& p : out->points) {
    p.id = r.U64();
    p.values.resize(dims);
    for (auto& v : p.values) v = r.F64();
  }
  return r.AtEnd();
}

std::string EncodeFlush(const FlushReq& req) {
  WireWriter w;
  w.Str(req.session_id);
  return w.Take();
}

bool DecodeFlush(const std::string& payload, FlushReq* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  return r.AtEnd();
}

std::string EncodeCheckpoint(const CheckpointReq& req) {
  WireWriter w;
  w.Str(req.session_id);
  return w.Take();
}

bool DecodeCheckpoint(const std::string& payload, CheckpointReq* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  return r.AtEnd();
}

std::string EncodeCloseSession(const CloseSessionReq& req) {
  WireWriter w;
  w.Str(req.session_id);
  w.Bool(req.persist);
  return w.Take();
}

bool DecodeCloseSession(const std::string& payload, CloseSessionReq* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  out->persist = r.Bool();
  return r.AtEnd();
}

std::string EncodeFeedback(const FeedbackReq& req) {
  WireWriter w;
  w.Str(req.session_id);
  w.U32(static_cast<std::uint32_t>(req.point_ids.size()));
  for (std::uint64_t id : req.point_ids) w.U64(id);
  const std::uint32_t rows = static_cast<std::uint32_t>(req.examples.size());
  const std::uint32_t dims =
      rows > 0 ? static_cast<std::uint32_t>(req.examples.front().size()) : 0;
  w.U32(rows);
  w.U32(dims);
  for (const auto& row : req.examples) {
    for (double v : row) w.F64(v);
  }
  return w.Take();
}

bool DecodeFeedback(const std::string& payload, FeedbackReq* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  const std::uint32_t nids = r.U32();
  if (!r.ok()) return false;
  // Each labeled id is 8 bytes; bound by division against what is left so
  // a crafted count cannot force a huge allocation (DecodeIngest's
  // discipline).
  if (nids > r.remaining() / 8) return r.Fail();
  out->point_ids.assign(nids, 0);
  for (std::uint64_t& id : out->point_ids) id = r.U64();
  const std::uint32_t rows = r.U32();
  const std::uint32_t dims = r.U32();
  if (!r.ok()) return false;
  // Same hostile-count bound as the training matrix: divide, never
  // multiply rows*dims, and reject zero-width rows outright.
  if (rows > 0 && (dims == 0 || rows > payload.size() / (8ull * dims))) {
    return r.Fail();
  }
  out->examples.assign(rows, std::vector<double>(dims));
  for (auto& row : out->examples) {
    for (auto& v : row) v = r.F64();
  }
  return r.AtEnd();
}

std::string EncodeQueryTopK(const QueryTopKReq& req) {
  WireWriter w;
  w.Str(req.session_id);
  w.U32(req.k);
  return w.Take();
}

bool DecodeQueryTopK(const std::string& payload, QueryTopKReq* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  out->k = r.U32();
  return r.AtEnd();
}

// ------------------------------------------------------- response codecs --

std::string EncodeOk(const OkResp& resp) {
  WireWriter w;
  w.U8(resp.request_type);
  return w.Take();
}

bool DecodeOk(const std::string& payload, OkResp* out) {
  WireReader r(payload);
  out->request_type = r.U8();
  return r.AtEnd();
}

std::string EncodeError(const ErrorResp& resp, std::uint8_t version) {
  WireWriter w;
  w.U8(resp.request_type);
  // The code field exists from v3 on; a v2-dialect error is message-only.
  if (version >= 3) w.U16(static_cast<std::uint16_t>(resp.code));
  w.Str(resp.message);
  return w.Take();
}

bool DecodeError(const std::string& payload, ErrorResp* out,
                 std::uint8_t version) {
  WireReader r(payload);
  out->request_type = r.U8();
  out->code = version >= 3 ? static_cast<ErrorCode>(r.U16())
                           : ErrorCode::kUnknown;
  out->message = r.Str();
  return r.AtEnd();
}

void EncodeVerdictList(const std::vector<SpotResult>& verdicts,
                       WireWriter* w) {
  w->U32(static_cast<std::uint32_t>(verdicts.size()));
  for (const SpotResult& v : verdicts) {
    w->Bool(v.is_outlier);
    w->F64(v.score);
    w->U32(static_cast<std::uint32_t>(v.findings.size()));
    for (const SubspaceFinding& f : v.findings) {
      w->U64(f.subspace.bits());
      w->F64(f.pcs.rd);
      w->F64(f.pcs.irsd);
      w->F64(f.pcs.count);
    }
  }
}

bool DecodeVerdictList(WireReader* r, std::vector<SpotResult>* out) {
  const std::uint32_t count = r->U32();
  if (!r->ok()) return false;
  // Each verdict occupies at least 13 bytes (flag + score + finding count).
  if (static_cast<std::uint64_t>(count) * 13 > r->remaining()) {
    return r->Fail();
  }
  out->assign(count, SpotResult{});
  for (SpotResult& v : *out) {
    v.is_outlier = r->Bool();
    v.score = r->F64();
    const std::uint32_t nfindings = r->U32();
    if (!r->ok()) return false;
    // A finding is 32 bytes (subspace mask + three PCS doubles).
    if (static_cast<std::uint64_t>(nfindings) * 32 > r->remaining()) {
      return r->Fail();
    }
    v.findings.assign(nfindings, SubspaceFinding{});
    for (SubspaceFinding& f : v.findings) {
      f.subspace = Subspace(r->U64());
      f.pcs.rd = r->F64();
      f.pcs.irsd = r->F64();
      f.pcs.count = r->F64();
    }
  }
  return r->ok();
}

std::string VerdictBytes(const std::vector<SpotResult>& verdicts) {
  WireWriter w;
  EncodeVerdictList(verdicts, &w);
  return w.Take();
}

std::string EncodeVerdicts(const VerdictsResp& resp) {
  WireWriter w;
  w.Str(resp.session_id);
  w.U64(resp.first_point_id);
  EncodeVerdictList(resp.verdicts, &w);
  return w.Take();
}

bool DecodeVerdicts(const std::string& payload, VerdictsResp* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  out->first_point_id = r.U64();
  if (!DecodeVerdictList(&r, &out->verdicts)) return false;
  return r.AtEnd();
}

void EncodeTopKEntryList(const std::vector<TopKEntry>& entries,
                         WireWriter* w) {
  w->U32(static_cast<std::uint32_t>(entries.size()));
  for (const TopKEntry& e : entries) {
    w->U64(e.point_id);
    w->U64(e.tick);
    w->F64(e.score);
    w->F64(e.decayed_score);
    w->U32(static_cast<std::uint32_t>(e.findings.size()));
    for (const SubspaceFinding& f : e.findings) {
      w->U64(f.subspace.bits());
      w->F64(f.pcs.rd);
      w->F64(f.pcs.irsd);
      w->F64(f.pcs.count);
    }
  }
}

bool DecodeTopKEntryList(WireReader* r, std::vector<TopKEntry>* out) {
  const std::uint32_t count = r->U32();
  if (!r->ok()) return false;
  // An entry occupies at least 36 bytes (id + tick + two scores + finding
  // count); bound the untrusted count against the remaining bytes.
  if (static_cast<std::uint64_t>(count) * 36 > r->remaining()) {
    return r->Fail();
  }
  out->assign(count, TopKEntry{});
  for (TopKEntry& e : *out) {
    e.point_id = r->U64();
    e.tick = r->U64();
    e.score = r->F64();
    e.decayed_score = r->F64();
    const std::uint32_t nfindings = r->U32();
    if (!r->ok()) return false;
    // A finding is 32 bytes (subspace mask + three PCS doubles).
    if (static_cast<std::uint64_t>(nfindings) * 32 > r->remaining()) {
      return r->Fail();
    }
    e.findings.assign(nfindings, SubspaceFinding{});
    for (SubspaceFinding& f : e.findings) {
      f.subspace = Subspace(r->U64());
      f.pcs.rd = r->F64();
      f.pcs.irsd = r->F64();
      f.pcs.count = r->F64();
    }
  }
  return r->ok();
}

std::string TopKBytes(const std::vector<TopKEntry>& entries) {
  WireWriter w;
  EncodeTopKEntryList(entries, &w);
  return w.Take();
}

std::string EncodeTopK(const TopKResp& resp) {
  WireWriter w;
  w.Str(resp.session_id);
  EncodeTopKEntryList(resp.entries, &w);
  return w.Take();
}

bool DecodeTopK(const std::string& payload, TopKResp* out) {
  WireReader r(payload);
  out->session_id = r.Str();
  if (!DecodeTopKEntryList(&r, &out->entries)) return false;
  return r.AtEnd();
}

// ---------------------------------------------------------- stats codec --

namespace {

void EncodeHistogram(const obs::Histogram& hist, WireWriter* w) {
  w->F64(hist.sum());
  w->F64(hist.min());
  w->F64(hist.max());
  // Sparse bucket list: (index, count) pairs for populated buckets.
  std::uint32_t nonzero = 0;
  for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    if (hist.bucket(i) != 0) ++nonzero;
  }
  w->U32(nonzero);
  for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    if (hist.bucket(i) == 0) continue;
    w->U8(static_cast<std::uint8_t>(i));
    w->U64(hist.bucket(i));
  }
}

bool DecodeHistogram(WireReader* r, obs::Histogram* out) {
  const double sum = r->F64();
  const double min = r->F64();
  const double max = r->F64();
  const std::uint32_t nonzero = r->U32();
  if (!r->ok()) return false;
  if (nonzero > obs::Histogram::kNumBuckets) return r->Fail();
  std::uint64_t counts[obs::Histogram::kNumBuckets] = {};
  for (std::uint32_t b = 0; b < nonzero; ++b) {
    const std::uint8_t idx = r->U8();
    const std::uint64_t count = r->U64();
    if (!r->ok()) return false;
    if (idx >= obs::Histogram::kNumBuckets) return r->Fail();
    counts[idx] = count;
  }
  *out = obs::Histogram::Restore(counts, sum, min, max);
  return r->ok();
}

void EncodeSnapshot(const obs::MetricsSnapshot& snap, WireWriter* w) {
  w->U32(static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& [name, value] : snap.counters) {
    w->Str(name);
    w->U64(value);
  }
  w->U32(static_cast<std::uint32_t>(snap.gauges.size()));
  for (const auto& [name, value] : snap.gauges) {
    w->Str(name);
    w->F64(value);
  }
  w->U32(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& [name, hist] : snap.histograms) {
    w->Str(name);
    EncodeHistogram(hist, w);
  }
}

bool DecodeSnapshot(WireReader* r, obs::MetricsSnapshot* out) {
  out->counters.clear();
  out->gauges.clear();
  out->histograms.clear();
  const std::uint32_t ncounters = r->U32();
  if (!r->ok()) return false;
  // A counter is >= 12 bytes (length-prefixed name + u64); bounding the
  // untrusted counts against the remaining bytes keeps a crafted count
  // from driving huge allocations (same discipline as DecodeIngest).
  if (ncounters > r->remaining() / 12) return r->Fail();
  for (std::uint32_t i = 0; i < ncounters; ++i) {
    const std::string name = r->Str();
    out->counters[name] = r->U64();
  }
  const std::uint32_t ngauges = r->U32();
  if (!r->ok()) return false;
  if (ngauges > r->remaining() / 12) return r->Fail();
  for (std::uint32_t i = 0; i < ngauges; ++i) {
    const std::string name = r->Str();
    out->gauges[name] = r->F64();
  }
  const std::uint32_t nhists = r->U32();
  if (!r->ok()) return false;
  // A histogram is >= 32 bytes (name + three doubles + bucket count).
  if (nhists > r->remaining() / 32) return r->Fail();
  for (std::uint32_t i = 0; i < nhists; ++i) {
    const std::string name = r->Str();
    obs::Histogram hist;
    if (!DecodeHistogram(r, &hist)) return false;
    out->histograms[name] = hist;
  }
  return r->ok();
}

void EncodeSessionQuality(const SessionQuality& q, WireWriter* w) {
  w->Str(q.session_id);
  w->U64(q.points);
  w->U64(q.alarms);
  w->U64(q.tracked_subspaces);
  w->U64(q.base_cells);
  w->U64(q.slab_slots);
  w->U64(q.free_slots);
  w->U64(q.compactions);
  w->U64(q.cells_reclaimed);
  EncodeHistogram(q.rd_margin, w);
  EncodeHistogram(q.irsd_margin, w);
  w->U32(static_cast<std::uint32_t>(q.subspaces.size()));
  for (const SubspaceQuality& s : q.subspaces) {
    w->U64(s.subspace_bits);
    w->U64(s.points);
    w->U64(s.alarms);
  }
}

bool DecodeSessionQuality(WireReader* r, SessionQuality* out) {
  out->session_id = r->Str();
  out->points = r->U64();
  out->alarms = r->U64();
  out->tracked_subspaces = r->U64();
  out->base_cells = r->U64();
  out->slab_slots = r->U64();
  out->free_slots = r->U64();
  out->compactions = r->U64();
  out->cells_reclaimed = r->U64();
  if (!DecodeHistogram(r, &out->rd_margin) ||
      !DecodeHistogram(r, &out->irsd_margin)) {
    return false;
  }
  const std::uint32_t nsub = r->U32();
  if (!r->ok()) return false;
  // A subspace row is 24 bytes; bound against the remaining bytes so a
  // crafted count cannot force a huge allocation.
  if (nsub > r->remaining() / 24) return r->Fail();
  out->subspaces.assign(nsub, SubspaceQuality{});
  for (SubspaceQuality& s : out->subspaces) {
    s.subspace_bits = r->U64();
    s.points = r->U64();
    s.alarms = r->U64();
  }
  return r->ok();
}

}  // namespace

obs::MetricsSnapshot StatsResp::Merged() const {
  obs::MetricsSnapshot merged;
  for (const obs::MetricsSnapshot& snap : reactors) merged.Merge(snap);
  for (const obs::MetricsSnapshot& snap : services) merged.Merge(snap);
  merged.counters["sessions_handed_off"] += sessions_handed_off;
  return merged;
}

std::string EncodeStats(const StatsResp& resp) {
  WireWriter w;
  w.U64(resp.sessions_handed_off);
  w.U32(static_cast<std::uint32_t>(resp.reactors.size()));
  for (const obs::MetricsSnapshot& snap : resp.reactors) {
    EncodeSnapshot(snap, &w);
  }
  w.U32(static_cast<std::uint32_t>(resp.services.size()));
  for (const obs::MetricsSnapshot& snap : resp.services) {
    EncodeSnapshot(snap, &w);
  }
  w.U32(static_cast<std::uint32_t>(resp.sessions.size()));
  for (const SessionQuality& q : resp.sessions) {
    EncodeSessionQuality(q, &w);
  }
  return w.Take();
}

bool DecodeStats(const std::string& payload, StatsResp* out) {
  WireReader r(payload);
  out->sessions_handed_off = r.U64();
  const std::uint32_t nreactors = r.U32();
  if (!r.ok()) return false;
  // An empty snapshot is 12 bytes (three zero counts).
  if (nreactors > payload.size() / 12) return r.Fail();
  out->reactors.assign(nreactors, obs::MetricsSnapshot());
  for (obs::MetricsSnapshot& snap : out->reactors) {
    if (!DecodeSnapshot(&r, &snap)) return false;
  }
  const std::uint32_t nservices = r.U32();
  if (!r.ok()) return false;
  if (nservices > payload.size() / 12) return r.Fail();
  out->services.assign(nservices, obs::MetricsSnapshot());
  for (obs::MetricsSnapshot& snap : out->services) {
    if (!DecodeSnapshot(&r, &snap)) return false;
  }
  const std::uint32_t nsessions = r.U32();
  if (!r.ok()) return false;
  // A quality section is >= 132 bytes (empty id + eight u64 tallies + two
  // empty histograms + subspace count).
  if (nsessions > payload.size() / 132) return r.Fail();
  out->sessions.assign(nsessions, SessionQuality());
  for (SessionQuality& q : out->sessions) {
    if (!DecodeSessionQuality(&r, &q)) return false;
  }
  return r.AtEnd();
}

}  // namespace net
}  // namespace spot
