#ifndef SPOT_NET_SPOT_SERVER_H_
#define SPOT_NET_SPOT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "stream/data_point.h"

namespace spot {

class SpotService;

namespace net {

/// Configuration of the network ingest server.
struct SpotServerConfig {
  /// Listen address (loopback by default; expose deliberately).
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via port() after
  /// Start() — the tests and the in-process loadgen mode rely on this).
  std::uint16_t port = 0;

  int backlog = 64;

  /// Per-session coalescing target: pending ingested points are run
  /// through the service in ProcessBatch chunks of this size. Larger
  /// batches amortize the engine's fork-join and probe-pipeline setup;
  /// verdicts never depend on the setting (the batch engine is
  /// bit-identical at every batch size).
  std::size_t batch_points = 256;

  /// Frame payload cap; a header announcing more is treated as corrupt.
  std::size_t max_payload_bytes = kDefaultMaxPayloadBytes;

  /// Write-side backpressure: when a connection's outbound queue exceeds
  /// this many bytes the server stops reading from that connection until
  /// the queue drains below half — a slow consumer stalls itself, never
  /// the event loop or other connections.
  std::size_t max_output_bytes = 4u << 20;

  /// Upper bound on one epoll/poll wait, which is also the cadence at
  /// which Stop()/SIGTERM is noticed when the server is idle.
  int poll_interval_ms = 50;

  /// When positive, sets SO_SNDBUF on accepted connections. The
  /// backpressure tests shrink it so the userspace output queue (and not
  /// the kernel's multi-megabyte loopback buffering) is what fills first;
  /// 0 keeps the OS default.
  int sndbuf_bytes = 0;

  /// Use epoll(7) when available; false forces the portable poll(2) loop
  /// (the fallback used automatically on non-Linux builds).
  bool use_epoll = true;
};

/// Event-loop counters (single-threaded: written only by the loop thread;
/// read them after Run() returns or from RunOnce()-driven tests).
struct SpotServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t corrupt_frames = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t batches_run = 0;
  std::uint64_t points_ingested = 0;
};

/// Single-threaded epoll (poll-fallback) ingest server over a shared
/// SpotService (DESIGN.md Section 7).
///
/// The loop accumulates frames per connection, coalesces pending points
/// per session into engine-sized batches, runs them through the service
/// (which owns the fork-join shard pool), and streams kVerdicts frames
/// back with write-side backpressure. Determinism: each session is owned
/// by exactly one connection, its points are processed strictly in
/// arrival order, and batch boundaries cannot change verdicts — so the
/// verdict stream is byte-identical to feeding the same points to
/// SpotService::Ingest in-process, regardless of how the client chunked
/// its frames, how the loop coalesced them, or the shard count.
///
/// Shutdown: Stop() (thread- and signal-safe) makes Run() exit its loop,
/// process every connection's pending points, flush what it can, and
/// checkpoint all sessions via SpotService::CheckpointAll — so a SIGTERM'd
/// server restarts bit-identically (InstallSignalHandlers wires this).
class SpotServer {
 public:
  /// Borrows `service`, which must outlive the server.
  SpotServer(SpotService* service, SpotServerConfig config);
  ~SpotServer();

  SpotServer(const SpotServer&) = delete;
  SpotServer& operator=(const SpotServer&) = delete;

  /// Binds and listens. False on socket/bind/listen failure.
  bool Start();

  /// The bound port (valid after Start(); resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Runs the event loop until Stop(), then drains and checkpoints.
  void Run();

  /// One event-loop turn (wait up to `timeout_ms`, handle events, flush
  /// coalesced batches). Returns false once stopped. Run() is
  /// `while (RunOnce(...)) {}` plus Shutdown(); tests can drive turns
  /// manually.
  bool RunOnce(int timeout_ms);

  /// Requests loop exit. Async-signal-safe (a single atomic store).
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  /// Drains pending batches, flushes and closes every connection, closes
  /// the listener, and checkpoints all sessions. Idempotent; Run() calls
  /// it on exit.
  void Shutdown();

  /// Routes SIGTERM/SIGINT to `server->Stop()` (pass nullptr to detach)
  /// and ignores SIGPIPE. One server per process can be wired at a time.
  static void InstallSignalHandlers(SpotServer* server);

  const SpotServerStats& stats() const { return stats_; }
  const SpotServerConfig& config() const { return config_; }

  /// Live connection count (tests).
  std::size_t connections() const { return conns_.size(); }

 private:
  class Poller;       // event-notification interface
  class PollPoller;   // portable poll(2) implementation
#ifdef __linux__
  class EpollPoller;  // epoll(7) implementation
#endif

  struct Conn {
    int fd = -1;
    FrameDecoder decoder{kDefaultMaxPayloadBytes};
    std::string outbuf;
    std::size_t out_off = 0;
    bool paused = false;      // reading suspended by backpressure
    bool want_close = false;  // close once outbuf drains
    bool poll_read = true;    // interest currently registered
    bool poll_write = false;
    /// Sessions attached to (and exclusively owned by) this connection.
    std::vector<std::string> sessions;
    /// Per-session coalescing buffers, ordered for deterministic
    /// end-of-turn flushing.
    std::map<std::string, std::vector<DataPoint>> pending;
  };

  bool AttachSession(Conn& conn, const std::string& id, std::string* error);
  void DetachSessions(Conn& conn);

  void AcceptReady();
  void ReadReady(int fd);
  void WriteReady(int fd);
  /// Handles one complete frame; false closes the connection.
  bool HandleFrame(Conn& conn, const Frame& frame);
  bool HandleIngest(Conn& conn, const std::string& payload);
  /// Runs `conn`'s pending points for `id` through the service in
  /// batch_points chunks; `all` also processes the sub-batch remainder.
  bool ProcessPending(Conn& conn, const std::string& id, bool all);
  /// End-of-turn flush: processes every connection's remaining pending
  /// points (whatever arrived together in this turn is the batch).
  void FlushAllPending();

  void Enqueue(Conn& conn, MsgType type, const std::string& payload);
  void SendOk(Conn& conn, MsgType request);
  void SendError(Conn& conn, MsgType request, const std::string& message);
  /// Non-blocking write of the connection's output queue.
  void TryFlush(Conn& conn);
  void UpdateBackpressure(Conn& conn);
  void SyncPollerInterest(Conn& conn);
  void CloseConn(int fd);

  SpotService* service_;
  SpotServerConfig config_;
  std::unique_ptr<Poller> poller_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool shutdown_done_ = false;
  /// Listener deregistered for one turn after an fd-exhausted accept.
  bool listener_paused_ = false;

  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  /// session id -> owning connection fd (exclusive attachment).
  std::map<std::string, int> session_owner_;
  SpotServerStats stats_;
};

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_SPOT_SERVER_H_
