#ifndef SPOT_NET_SPOT_SERVER_H_
#define SPOT_NET_SPOT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/reactor.h"
#include "net/server_config.h"
#include "net/session_registry.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/spot_service.h"

namespace spot {
namespace net {

/// Multi-reactor epoll (poll-fallback) ingest server (DESIGN.md
/// Section 8).
///
/// The server owns `num_reactors` event-loop shards. Each reactor runs on
/// its own thread with its own Poller, its own connections, and its own
/// SpotService shard; the shards share one checkpoint directory (files
/// are per-session, so they never collide). Connections are spread either
/// by per-reactor SO_REUSEPORT listeners on the shared port (the kernel
/// picks by 4-tuple hash) or — when SO_REUSEPORT is unavailable or
/// disabled — by reactor 0 accepting and dealing fds round-robin.
///
/// Determinism is unchanged from the single-threaded server: a session is
/// exclusively attached to one connection, that connection lives on one
/// reactor, and that reactor processes the session's points strictly in
/// arrival order — so the verdict stream is byte-identical to feeding the
/// same points to SpotService::Ingest in-process, regardless of reactor
/// count, shard count, framing, or coalescing. The cross-reactor
/// SessionRegistry enforces the exclusivity and hands sessions off
/// between shards through the checkpoint directory on resume.
///
/// Shutdown: Stop() (thread- and signal-safe, a single atomic store on a
/// flag every reactor polls) makes every loop exit, drain its pending
/// batches, flush what it can, and checkpoint its shard — so a SIGTERM'd
/// server restarts bit-identically, even at a different reactor count
/// (InstallSignalHandlers wires this).
class SpotServer {
 public:
  /// The server owns its service shards: one SpotService per reactor,
  /// each built from `service_config` (shared checkpoint_dir, per-shard
  /// fork-join pools).
  SpotServer(SpotServiceConfig service_config, SpotServerConfig config);
  ~SpotServer();

  SpotServer(const SpotServer&) = delete;
  SpotServer& operator=(const SpotServer&) = delete;

  /// Binds the listener(s) and initializes every reactor. False on
  /// socket/bind/listen or resource failure.
  bool Start();

  /// The bound port (valid after Start(); resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Runs reactors 1..N-1 on their own threads and reactor 0 on the
  /// calling thread, until Stop(); then joins and shuts everything down.
  void Run();

  /// Requests exit of every reactor loop. Async-signal-safe (a single
  /// atomic store); noticed within poll_interval_ms even when idle.
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  /// Stops, joins any loop threads, and runs every reactor's drain +
  /// checkpoint shutdown. Idempotent; Run() performs it on exit. Only
  /// call from outside Run() after Run() returned.
  void Shutdown();

  /// Routes SIGTERM/SIGINT to `server->Stop()` (pass nullptr to detach),
  /// ignores SIGPIPE, and latches SIGUSR2 as a trace-dump request (poll
  /// it with TraceRequested()). One server per process can be wired at a
  /// time.
  static void InstallSignalHandlers(SpotServer* server);

  /// True once per SIGUSR2 received since the last call (the flag is
  /// consumed). The serving binary polls this and writes TraceJson() to
  /// its --trace-file; the server itself never touches the filesystem.
  static bool TraceRequested();

  const SpotServerConfig& config() const { return config_; }
  std::size_t num_reactors() const { return reactors_.size(); }

  /// True when every reactor accepts on its own SO_REUSEPORT listener;
  /// false in single-reactor or round-robin hand-off mode.
  bool reuseport_active() const { return reuseport_active_; }

  /// Reactor `i`'s service shard (0 ≤ i < num_reactors()).
  SpotService& service(std::size_t i = 0) { return *services_[i]; }
  const SpotService& service(std::size_t i = 0) const {
    return *services_[i];
  }

  /// Reactor `i`'s event-loop counters. Loop-thread state: read after
  /// Run()/Shutdown() returned (or between manually driven turns).
  const SpotServerStats& reactor_stats(std::size_t i) const {
    return reactors_[i]->stats();
  }

  /// Counter totals across all reactors (same read-after-join caveat).
  SpotServerStats stats() const;

  /// Service metrics aggregated across all shards (sums; queue peak is
  /// the max). Safe to call any time — services lock internally.
  ServiceMetrics TotalServiceMetrics() const;

  /// Whole-server observability snapshot (DESIGN.md Section 9): the
  /// per-reactor registry snapshots last published to the hub, one
  /// service-shard snapshot each, and the cross-reactor hand-off count.
  /// Safe from any thread at any time — it reads only mutex-guarded
  /// published copies, never a reactor's live registry. While the server
  /// runs, each reactor's slice is at most one loop turn stale.
  StatsResp StatsSnapshot() const;

  /// StatsSnapshot() rendered as Prometheus text exposition (per-reactor
  /// series labeled reactor="i", per-shard series labeled shard="i",
  /// per-session detection-quality series labeled session="id" with
  /// per-subspace sub-series adding subspace="0x<mask>").
  /// This is what the --metrics-port endpoint serves.
  std::string PrometheusText() const;

  /// The flight recorder's contents (every reactor's ring) rendered as
  /// Chrome-trace JSON (DESIGN.md Section 10) — load it in Perfetto or
  /// chrome://tracing. Valid-but-empty when tracing is disabled. Safe
  /// from any thread (each ring locks internally).
  std::string TraceJson() const;

  /// Every service shard's detector event journal rendered as one JSON
  /// object: {"shards":[<journal>, ...]}. Shards without a journal are
  /// skipped. Safe from any thread.
  std::string JournalJson() const;

  /// Reactor `i`'s flight-recorder ring, or nullptr when tracing is off.
  obs::TraceRecorder* trace_recorder(std::size_t i) {
    return i < traces_.size() ? traces_[i].get() : nullptr;
  }

  /// The metrics HTTP port actually bound (valid after Start() when
  /// config().metrics_port >= 0; -1 when the endpoint is disabled).
  int metrics_port() const;

  /// Reactor handle for tests that drive turns manually.
  Reactor& reactor(std::size_t i = 0) { return *reactors_[i]; }

 private:
  /// Creates one bound, listening, non-blocking socket on
  /// `config_.bind_address:*port` (0 = ephemeral; resolved value written
  /// back). Returns -1 on failure.
  int MakeListener(bool reuseport, std::uint16_t* port);

  SpotServerConfig config_;
  std::vector<std::unique_ptr<SpotService>> services_;
  std::unique_ptr<SessionRegistry> registry_;
  obs::MetricsHub hub_;
  std::unique_ptr<obs::HttpExporter> exporter_;
  /// Per-reactor flight-recorder rings (empty when trace_capacity == 0).
  /// Owned here — not by the reactors — so a dump can merge every ring
  /// regardless of which thread asks.
  std::vector<std::unique_ptr<obs::TraceRecorder>> traces_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<std::thread> threads_;
  std::uint16_t port_ = 0;
  bool reuseport_active_ = false;
  std::atomic<bool> stop_{false};
  bool shutdown_done_ = false;
};

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_SPOT_SERVER_H_
