#ifndef SPOT_NET_SERVER_CONFIG_H_
#define SPOT_NET_SERVER_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/protocol.h"

namespace spot {
namespace net {

/// Configuration of the network ingest server. One instance is shared by
/// every reactor (read-only after Start()).
struct SpotServerConfig {
  /// Listen address (loopback by default; expose deliberately).
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via port() after
  /// Start() — the tests and the in-process loadgen mode rely on this).
  std::uint16_t port = 0;

  int backlog = 64;

  /// Highest wire protocol version this server speaks (DESIGN.md Section
  /// 11). The default is the current kWireVersion; setting 2 emulates a
  /// v2-era server for the negotiation tests — the v3 request types
  /// (kFeedback, kQueryTopK) are then refused with a cause instead of
  /// serviced, and every reply is stamped (and kError laid out) in the
  /// v2 dialect. Replies to a given connection always use
  /// min(this, highest version the peer has demonstrated).
  std::uint8_t wire_version = kWireVersion;

  /// Event-loop shards (DESIGN.md Section 8): each reactor runs its own
  /// epoll/poll loop on its own thread over its own connections, with its
  /// own SpotService shard. Verdicts never depend on the setting — a
  /// session is pinned to the reactor of the connection that opened it
  /// and processed in arrival order there.
  std::size_t num_reactors = 1;

  /// Accept strategy for num_reactors > 1: with SO_REUSEPORT (default)
  /// every reactor owns its own listener on the shared port and the
  /// kernel spreads connections; when unavailable — or disabled here —
  /// reactor 0 owns the sole listener and deals accepted connections
  /// round-robin across reactors (deterministic placement; the
  /// cross-reactor tests rely on it).
  bool use_reuseport = true;

  /// Per-session coalescing target: pending ingested points are run
  /// through the service in ProcessBatch chunks of this size. Larger
  /// batches amortize the engine's fork-join and probe-pipeline setup;
  /// verdicts never depend on the setting (the batch engine is
  /// bit-identical at every batch size).
  std::size_t batch_points = 256;

  /// Frame payload cap; a header announcing more is treated as corrupt.
  std::size_t max_payload_bytes = kDefaultMaxPayloadBytes;

  /// Write-side backpressure: when a connection's outbound queue exceeds
  /// this many bytes the server stops reading from that connection until
  /// the queue drains below half — a slow consumer stalls itself, never
  /// its event loop or other connections.
  std::size_t max_output_bytes = 4u << 20;

  /// Upper bound on one epoll/poll wait, which is also the cadence at
  /// which Stop()/SIGTERM is noticed when the server is idle.
  int poll_interval_ms = 50;

  /// When positive, sets SO_SNDBUF on accepted connections. The
  /// backpressure tests shrink it so the userspace output queue (and not
  /// the kernel's multi-megabyte loopback buffering) is what fills first;
  /// 0 keeps the OS default.
  int sndbuf_bytes = 0;

  /// Use epoll(7) when available; false forces the portable poll(2) loop
  /// (the fallback used automatically on non-Linux builds).
  bool use_epoll = true;

  /// Prometheus-text scrape endpoint (DESIGN.md Section 9): when >= 0 the
  /// server runs a minimal HTTP/1.0 responder on its own thread at
  /// `bind_address:metrics_port` (0 = ephemeral; read back via
  /// SpotServer::metrics_port()). -1 disables the endpoint. The wire
  /// kStats scrape is always available regardless of this setting.
  int metrics_port = -1;

  /// When > 0, a ProcessBatch call slower than this many milliseconds
  /// logs a warning (and counts in the reactor's `slow_batches` metric).
  /// 0 disables the warning; the histogram records every batch either way.
  double slow_batch_warn_ms = 0.0;

  /// Per-reactor flight-recorder capacity (DESIGN.md Section 10): each
  /// reactor keeps the last this-many pipeline trace spans
  /// (decode/coalesce/process/shard_probe/encode/write) in a fixed ring,
  /// dumped on demand as Chrome-trace JSON (SIGUSR2, kTraceDump, or
  /// GET /trace). 0 disables tracing entirely — the hot path then pays
  /// one null-pointer test per stage and records nothing.
  std::size_t trace_capacity = 2048;

  /// Hardware performance-counter profiling plane (DESIGN.md Section 12):
  /// when true each reactor opens a per-thread perf_event group (cycles,
  /// instructions, cache refs/misses, branch misses) on its loop thread
  /// and attributes counter deltas to the five pipeline stages
  /// (decode/coalesce/process/encode/write), published as labeled
  /// `perf_*` families on every scrape surface. Where the syscall is
  /// denied (perf_event_paranoid, seccomp, non-Linux) the plane degrades
  /// to a wall-clock software fallback and says so via the `perf_mode`
  /// gauge. Off by default — disabled hooks cost one boolean test — and
  /// verdicts/checkpoint bytes are bit-identical either way.
  bool profile_counters = false;
};

/// Event-loop counters. Each reactor owns one instance, written only by
/// its loop thread; read a reactor's stats after its loop exited (or
/// between manually driven turns), and totals via SpotServer::stats().
struct SpotServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t corrupt_frames = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t batches_run = 0;
  std::uint64_t points_ingested = 0;
  /// Times this reactor's listener was paused by an fd-exhausted accept
  /// (EMFILE/ENFILE) — strictly per-reactor, see Reactor::AcceptReady.
  std::uint64_t listener_pauses = 0;
  /// Plausible-but-unsupported request types answered with a
  /// kError(kUnsupportedRequest) — the version-negotiation escape hatch.
  /// Deliberately NOT a protocol error: the connection stays open.
  std::uint64_t unsupported_requests = 0;

  /// Counter-wise sum (for aggregating per-reactor stats into a total).
  void Add(const SpotServerStats& other) {
    connections_accepted += other.connections_accepted;
    connections_closed += other.connections_closed;
    frames_received += other.frames_received;
    frames_sent += other.frames_sent;
    bytes_in += other.bytes_in;
    bytes_out += other.bytes_out;
    corrupt_frames += other.corrupt_frames;
    protocol_errors += other.protocol_errors;
    backpressure_stalls += other.backpressure_stalls;
    batches_run += other.batches_run;
    points_ingested += other.points_ingested;
    listener_pauses += other.listener_pauses;
    unsupported_requests += other.unsupported_requests;
  }
};

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_SERVER_CONFIG_H_
