#ifndef SPOT_NET_REACTOR_H_
#define SPOT_NET_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/poller.h"
#include "net/protocol.h"
#include "net/server_config.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "stream/data_point.h"

namespace spot {

class SpotService;

namespace net {

class SessionRegistry;

/// One event-loop shard of the multi-reactor server (DESIGN.md Section
/// 8). A reactor owns a Poller, a set of connections, an optional
/// listener (its own SO_REUSEPORT listener, the sole listener in
/// single-reactor or hand-off mode, or none at all when another reactor
/// accepts for it), and a borrowed SpotService shard holding exactly the
/// sessions attached to its connections. Everything it touches —
/// connections, coalescing buffers, its stats — is loop-thread-local;
/// the only shared state is the session registry (lifecycle events
/// only), the service shards (internally locked, and disjoint between
/// reactors by the registry's ownership invariant), and the server-wide
/// stop flag.
///
/// Per-session processing order — and therefore verdict bit-identity —
/// is exactly the single-threaded server's: a session is exclusively
/// attached to one connection, which lives on one reactor, whose loop
/// processes the session's points in arrival order.
class Reactor {
 public:
  /// Borrows everything; all pointees must outlive the reactor.
  Reactor(int index, const SpotServerConfig& config, SpotService* service,
          SessionRegistry* registry, const std::atomic<bool>* stop);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates the poller and the cross-thread wakeup pipe. False on
  /// resource exhaustion.
  bool Init();

  /// Takes ownership of a bound, listening, non-blocking socket. At most
  /// one per reactor; pass `acceptor=true` when this reactor accepts on
  /// behalf of all reactors (hand-off mode) rather than only for itself.
  void AdoptListener(int fd, bool acceptor,
                     std::vector<Reactor*> handoff_targets);

  /// Runs the loop until the shared stop flag is set, then drains,
  /// closes and checkpoints (Shutdown). Call from exactly one thread.
  void Run();

  /// One event-loop turn; returns false once stopped. Run() is
  /// `while (RunOnce(...)) {}` plus Shutdown().
  bool RunOnce(int timeout_ms);

  /// Drains pending batches, flushes and closes every connection, closes
  /// the listener and wakeup pipe, and checkpoints this shard's sessions.
  /// Idempotent; Run() calls it on exit, the server calls it for
  /// reactors whose loop never ran.
  void Shutdown();

  /// Hands a freshly accepted connection to this reactor from another
  /// thread (the acceptor's). The fd is adopted on the next loop turn;
  /// the wakeup pipe makes that turn start immediately.
  void EnqueueConn(int fd);

  /// Wires the reactor into the server's observability plane
  /// (DESIGN.md Section 9). `hub` receives this reactor's metrics
  /// snapshot at the end of every loop turn (slot == index());
  /// `stats_source` assembles the whole-server StatsResp a kStats
  /// request on one of this reactor's connections is answered with.
  /// Call before the loop starts; both may be null/empty (metrics off).
  void SetObservability(obs::MetricsHub* hub,
                        std::function<StatsResp()> stats_source);

  /// Wires the reactor into the flight recorder (DESIGN.md Section 10).
  /// `recorder` receives this reactor's pipeline spans
  /// (decode/coalesce/process/shard_probe/encode/write); `trace_source`
  /// renders the whole-server Chrome-trace JSON a kTraceDump request on
  /// one of this reactor's connections is answered with. Call before the
  /// loop starts; both may be null/empty (tracing off — each stage then
  /// pays one null test and records nothing).
  void SetTracing(obs::TraceRecorder* recorder,
                  std::function<std::string()> trace_source);

  int index() const { return index_; }
  SpotService* service() const { return service_; }
  /// Loop-thread state: read only after the loop thread is joined (or
  /// between RunOnce calls when driving turns manually).
  const SpotServerStats& stats() const { return stats_; }
  std::size_t connections() const { return conns_.size(); }

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder{kDefaultMaxPayloadBytes};
    std::string outbuf;
    std::size_t out_off = 0;
    bool paused = false;      // reading suspended by backpressure
    bool want_close = false;  // close once outbuf drains
    bool poll_read = true;    // interest currently registered
    bool poll_write = false;
    /// Highest frame version this peer has demonstrated (monotone,
    /// starts at the floor). Replies go out stamped — and kError laid
    /// out — at min(peer_version, config.wire_version), so a v2 client
    /// keeps receiving v2-dialect frames from a v3 server.
    std::uint8_t peer_version = kMinWireVersion;
    /// Sessions attached to (and exclusively owned by) this connection.
    std::vector<std::string> sessions;
    /// Per-session coalescing buffers, ordered for deterministic
    /// end-of-turn flushing.
    std::map<std::string, std::vector<DataPoint>> pending;
  };

  void AttachLocal(Conn& conn, const std::string& id);
  void DetachSessions(Conn& conn);

  void AcceptReady();
  void AdoptConn(int fd);
  void DrainIntake();

  void ReadReady(int fd);
  void WriteReady(int fd);
  /// Handles one complete frame; false closes the connection.
  bool HandleFrame(Conn& conn, const Frame& frame);
  bool HandleIngest(Conn& conn, const std::string& payload);
  /// Runs `conn`'s pending points for `id` through the service in
  /// batch_points chunks; `all` also processes the sub-batch remainder.
  bool ProcessPending(Conn& conn, const std::string& id, bool all);
  /// End-of-turn flush: processes every connection's remaining pending
  /// points (whatever arrived together in this turn is the batch).
  void FlushAllPending();

  /// Folds the loop counters and gauges into the registry and pushes a
  /// fresh snapshot into the hub (no-op without a hub). Runs at the end
  /// of every loop turn — a few-KB copy, far off the per-point path.
  void PublishMetrics();

  /// The version this connection's replies are stamped with:
  /// min(peer_version, config.wire_version).
  std::uint8_t ReplyVersion(const Conn& conn) const;
  /// True when `id` is attached to exactly this connection; otherwise a
  /// kError(kNotAttached) naming the session is queued and false returns.
  bool RequireAttached(Conn& conn, MsgType request, const std::string& id);
  void Enqueue(Conn& conn, MsgType type, const std::string& payload);
  void SendOk(Conn& conn, MsgType request);
  void SendError(Conn& conn, MsgType request, ErrorCode code,
                 const std::string& message);
  /// Non-blocking write of the connection's output queue (traced as a
  /// `write` span when bytes actually move and tracing is on).
  void TryFlush(Conn& conn);
  /// The send loop proper; returns the bytes written this call.
  std::size_t WriteLoop(Conn& conn);
  void UpdateBackpressure(Conn& conn);
  void SyncPollerInterest(Conn& conn);
  void CloseConn(int fd);

  bool stopping() const { return stop_->load(std::memory_order_relaxed); }

  const int index_;
  const SpotServerConfig& config_;
  SpotService* service_;
  SessionRegistry* registry_;
  const std::atomic<bool>* stop_;

  std::unique_ptr<Poller> poller_;
  int listen_fd_ = -1;
  /// Listener deregistered for one turn after an fd-exhausted accept;
  /// strictly per-reactor so one exhausted shard never stalls another.
  bool listener_paused_ = false;
  /// Hand-off mode: this reactor accepts and deals connections
  /// round-robin across `handoff_targets_` (itself included).
  bool acceptor_ = false;
  std::vector<Reactor*> handoff_targets_;
  std::size_t next_target_ = 0;

  /// Cross-thread intake of accepted fds (hand-off mode): guarded by
  /// `intake_mu_`, signalled through the wakeup pipe.
  std::mutex intake_mu_;
  std::vector<int> intake_;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  bool shutdown_done_ = false;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  /// Reactor-local session -> owning connection fd. A subset view of the
  /// registry, safe to consult lock-free on the hot ingest path because
  /// attachment on this reactor implies global exclusivity.
  std::map<std::string, int> session_owner_;
  SpotServerStats stats_;

  /// Loop-thread-local metrics (DESIGN.md Section 9). The registry is
  /// written only by the loop thread; the cached instrument pointers
  /// keep the hot path at a plain increment — no atomics, no locks, no
  /// name lookups. Cross-thread reads happen only through hub_ snapshot
  /// copies published once per loop turn.
  obs::Registry obs_;
  obs::Histogram* h_decode_us_ = obs_.GetHistogram("pipeline_decode_us");
  obs::Histogram* h_coalesce_us_ = obs_.GetHistogram("pipeline_coalesce_us");
  obs::Histogram* h_process_us_ = obs_.GetHistogram("pipeline_process_us");
  obs::Histogram* h_encode_us_ = obs_.GetHistogram("pipeline_encode_us");
  obs::Histogram* h_write_us_ = obs_.GetHistogram("pipeline_write_us");
  obs::Histogram* h_batch_points_ = obs_.GetHistogram("batch_points");
  obs::Counter* c_slow_batches_ = obs_.GetCounter("slow_batches");
  obs::Counter* c_stats_scrapes_ = obs_.GetCounter("stats_scrapes");
  obs::Counter* c_trace_dumps_ = obs_.GetCounter("trace_dumps");
  obs::MetricsHub* hub_ = nullptr;
  std::function<StatsResp()> stats_source_;

  /// Flight recorder (DESIGN.md Section 10): per-batch pipeline spans,
  /// written only by the loop thread into the server-owned per-reactor
  /// ring. Null = tracing off (the stage hooks cost one branch each).
  obs::TraceRecorder* trace_ = nullptr;
  std::function<std::string()> trace_source_;
  /// Per-reactor batch-id generator: the reactor index in the top 16
  /// bits keeps ids globally unique, so a merged multi-reactor trace
  /// never aliases two batches. 0 is reserved for "not batch-scoped".
  std::uint64_t next_batch_seq_ = 1;

  /// Hardware-counter profiling plane (DESIGN.md Section 12). The group
  /// is opened lazily on the loop thread (perf_event groups count the
  /// opening thread) the first time RunOnce runs with profiling on; null
  /// means profiling off and every stage hook costs one pointer test.
  /// Totals are loop-thread-local like the registry; they flow out as
  /// labeled `perf_*` families in PublishMetrics.
  std::unique_ptr<obs::PerfCounterGroup> perf_group_;
  obs::PerfStageTotals perf_decode_;
  obs::PerfStageTotals perf_coalesce_;
  obs::PerfStageTotals perf_process_;
  obs::PerfStageTotals perf_encode_;
  obs::PerfStageTotals perf_write_;
  /// Process-level gauges (RSS, fds, uptime) are refreshed by reactor 0
  /// only, at most every ~500 ms — /proc reads are cheap but not free.
  std::int64_t last_process_gauges_us_ = 0;
};

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_REACTOR_H_
