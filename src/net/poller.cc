#include "net/poller.h"

#include <cerrno>
#include <cstring>
#include <map>
#include <poll.h>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#endif

namespace spot {
namespace net {

namespace {

class PollPoller : public Poller {
 public:
  bool Add(int fd, bool read, bool write) override {
    interest_[fd] = {read, write};
    return true;
  }
  void Update(int fd, bool read, bool write) override {
    auto it = interest_.find(fd);
    if (it != interest_.end()) it->second = {read, write};
  }
  void Remove(int fd) override { interest_.erase(fd); }

  int Wait(int timeout_ms, std::vector<Event>* out) override {
    fds_.clear();
    for (const auto& [fd, want] : interest_) {
      short events = 0;
      if (want.first) events |= POLLIN;
      if (want.second) events |= POLLOUT;
      fds_.push_back(pollfd{fd, events, 0});
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    out->clear();
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(e);
    }
    return static_cast<int>(out->size());
  }

 private:
  std::map<int, std::pair<bool, bool>> interest_;
  std::vector<pollfd> fds_;
};

#ifdef __linux__
class EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  bool Add(int fd, bool read, bool write) override {
    epoll_event ev = MakeEvent(fd, read, write);
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
  void Update(int fd, bool read, bool write) override {
    epoll_event ev = MakeEvent(fd, read, write);
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }
  void Remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int Wait(int timeout_ms, std::vector<Event>* out) override {
    epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    out->clear();
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(e);
    }
    return n;
  }

 private:
  static epoll_event MakeEvent(int fd, bool read, bool write) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    return ev;
  }

  int epfd_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool use_epoll) {
#ifdef __linux__
  if (use_epoll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) return epoll;
  }
#else
  (void)use_epoll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace net
}  // namespace spot
