#ifndef SPOT_NET_SESSION_REGISTRY_H_
#define SPOT_NET_SESSION_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace spot {

class SpotService;

namespace net {

/// Cross-reactor session-ownership registry (DESIGN.md Section 8.2).
///
/// The multi-reactor server gives every reactor its own SpotService shard;
/// a session's detector state lives in exactly one shard — its *home* —
/// and is exclusively attached to at most one connection, which by
/// construction lives on the home reactor. The registry is the one piece
/// of shared session state: a map `id -> {home reactor, attached
/// connection}` behind a single mutex that is touched only at lifecycle
/// events (create / resume / close / connection teardown). The per-point
/// ingest path never takes it — each reactor checks attachment against
/// its own connection-local owner map, which is sound because the
/// registry guarantees a session attached on one reactor is attached
/// nowhere else.
///
/// A resume that lands on a non-home reactor is *handed off* when a
/// checkpoint directory is configured: the old home checkpoints and
/// forgets the session, the new home reopens it from the shared
/// directory. The full-state checkpoint round-trips bit-identically
/// (DESIGN.md Section 4.3), so the verdict stream is unaffected by where
/// a session lands after a reconnect. Without a checkpoint directory the
/// resume is cleanly refused with an error naming the owning reactor.
class SessionRegistry {
 public:
  /// Borrows the per-reactor services (index == reactor index), which
  /// must outlive the registry. `allow_handoff` reflects whether the
  /// services share a checkpoint directory.
  SessionRegistry(std::vector<SpotService*> services, bool allow_handoff);

  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Reserves `id` for a CreateSession on `reactor`, attached to
  /// `conn_fd`. False (with `*error` and `*code` set) when any reactor
  /// already knows the id — registered here or resident in some service.
  /// On success the caller runs CreateSession on its own service outside
  /// the registry lock and must call Forget(id) if that fails.
  bool BeginCreate(const std::string& id, int reactor, int conn_fd,
                   std::string* error, ErrorCode* code);

  /// Attaches `id` to `conn_fd` on `reactor` for a ResumeSession, making
  /// that reactor's service the session's home. Semantics:
  ///  - attached to another connection (any reactor): refused;
  ///  - already attached to this very connection: idempotent success;
  ///  - unattached, home == reactor: plain attach;
  ///  - unattached, home != reactor (or resident in another service
  ///    without a registry entry): hand-off via the shared checkpoint
  ///    directory, refused when there is none;
  ///  - unknown everywhere: reopened from the checkpoint directory.
  /// On failure `*error` carries the human-readable cause and `*code` the
  /// machine-readable one (kAttachedElsewhere, kWrongHomeReactor,
  /// kCheckpointFailed for a failed hand-off, kSessionUnknown).
  bool Attach(const std::string& id, int reactor, int conn_fd,
              std::string* error, ErrorCode* code);

  /// The owning connection went away. The session stays in its home
  /// reactor's service, unattached, ready for a later Attach from any
  /// reactor. Ignored unless `reactor`/`conn_fd` is the recorded owner.
  void Detach(const std::string& id, int reactor, int conn_fd);

  /// The session was closed (or its create failed): drop the entry.
  void Forget(const std::string& id);

  /// Registered session count (tests).
  std::size_t size() const;

  /// Completed cross-reactor hand-offs since construction (a lifecycle
  /// counter surfaced by the observability layer).
  std::uint64_t handoffs() const;

 private:
  struct Owner {
    int home = 0;           // reactor whose service holds the state
    int conn_reactor = -1;  // attached connection, (-1, -1) = unattached
    int conn_fd = -1;
    bool attached() const { return conn_fd >= 0; }
  };

  std::vector<SpotService*> services_;
  const bool allow_handoff_;
  mutable std::mutex mu_;
  std::map<std::string, Owner> owners_;
  std::uint64_t handoffs_ = 0;
};

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_SESSION_REGISTRY_H_
