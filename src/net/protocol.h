#ifndef SPOT_NET_PROTOCOL_H_
#define SPOT_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/spot_config.h"
#include "core/topk_outliers.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "stream/data_point.h"

namespace spot {
namespace net {

/// SPOT wire protocol v3 (DESIGN.md Sections 7 and 11).
///
/// v3 (this version) adds the feedback/query plane: the kFeedback request
/// (supervised labeling of retained or fresh outlier examples), the
/// kQueryTopK request / kTopKResp response pair (the k worst outliers in
/// the current window, with their outlying-subspace findings), and a
/// machine-readable ErrorCode carried in every kError payload. Unlike the
/// v1 -> v2 bump, v3 *negotiates*: frames of version kMinWireVersion
/// through kWireVersion are accepted (the layout of every v2 message is
/// unchanged in v3 except kError, whose layout follows the enclosing
/// frame's version), a v2-era server answers the new request types with a
/// kError(kUnsupportedRequest) instead of closing the connection, and the
/// client degrades gracefully when it sees that refusal. Servers reply in
/// the highest version the peer has demonstrated (capped by their own),
/// so a raw v2 client keeps receiving v2-layout errors.
///
/// v2 added the kTraceDump request / kTraceResp response pair
/// (flight-recorder dump, DESIGN.md Section 10) and extended the
/// kStatsResp payload with per-session detection-quality sections. A v1
/// peer is still rejected at the frame layer.
///
/// Every message is one *frame*: a fixed 16-byte header followed by a
/// little-endian payload. The header is
///
///     u32 magic   = kFrameMagic ("SPW1")
///     u8  version = kWireVersion
///     u8  type    (MsgType)
///     u16 flags   = 0 (reserved; receivers reject non-zero)
///     u32 payload_len
///     u32 payload_crc32 (IEEE CRC-32 of the payload bytes)
///
/// mirroring the checkpoint format's versioning discipline
/// (src/core/checkpoint.h): fixed-width little-endian fields, doubles as
/// raw IEEE-754 bit patterns, a single version byte that readers must
/// recognize — no optional fields or skippable sections inside a version;
/// any layout change bumps kWireVersion. The CRC and the payload-length
/// cap make frame parsing safe against truncated, corrupt and oversized
/// input: a violating frame is a *connection* error (there is no way to
/// resynchronize a byte stream mid-frame), never a crash.
///
/// Conversation model (one TCP connection, strictly ordered):
///  * The client sends request frames (kCreateSession, kResumeSession,
///    kIngest, kFlush, kCheckpoint, kCloseSession).
///  * Every request except kIngest gets exactly one kOk or kError response,
///    in request order. kIngest is pipelined fire-and-forget: its verdicts
///    arrive asynchronously as kVerdicts frames, one verdict per ingested
///    point in point order, batched however the server coalesced them.
///  * kFlush is the barrier: its kOk is enqueued after every verdict for
///    the flushed session(s), so a client that reads until the kOk has
///    seen every verdict for the points it sent.

constexpr std::uint32_t kFrameMagic = 0x31575053;  // "SPW1" little-endian
constexpr std::uint8_t kWireVersion = 3;
/// Oldest frame version still accepted (the v2 message layouts are a
/// strict subset of v3, so speaking to a v2 peer costs nothing).
constexpr std::uint8_t kMinWireVersion = 2;
constexpr std::size_t kFrameHeaderBytes = 16;

/// Default cap on a frame's payload. 16 MiB fits > 100k points of a
/// 20-attribute stream in one ingest frame; anything larger is taken as a
/// corrupt length field, not a legitimate request.
constexpr std::size_t kDefaultMaxPayloadBytes = 16u << 20;

enum class MsgType : std::uint8_t {
  // Requests (client -> server).
  kCreateSession = 1,  // id + full SpotConfig + training matrix
  kResumeSession = 2,  // id; reopen from the service checkpoint directory
  kIngest = 3,         // id + batch of points (pipelined, no direct reply)
  kFlush = 4,          // id ("" = all sessions of this connection)
  kCheckpoint = 5,     // id ("" = CheckpointAll)
  kCloseSession = 6,   // id + persist flag
  kStats = 7,          // empty payload; scrape the server's metrics
  kTraceDump = 8,      // empty payload; dump the flight recorder
  kFeedback = 9,       // (v3) id + labeled point ids + fresh examples
  kQueryTopK = 10,     // (v3) id + k; ask for the worst current outliers

  // Responses (server -> client).
  kOk = 16,         // echoes the request type it answers
  kError = 17,      // echoes the request type + error code + message
  kVerdicts = 18,   // id + verdicts for a coalesced run of ingested points
  kStatsResp = 19,  // whole-server metrics snapshot (answers kStats)
  kTraceResp = 20,  // raw Chrome-trace JSON bytes (answers kTraceDump)
  kTopKResp = 21,   // (v3) id + top-k outlier entries (answers kQueryTopK)
};

/// True for the request-role message types this server version accepts.
bool IsRequestType(std::uint8_t type);

/// True for type values reserved for *future* requests as well ([1, 15]).
/// A plausible-but-unsupported request gets a kError(kUnsupportedRequest)
/// reply — the version-negotiation escape hatch — whereas an implausible
/// type on a request stream is a protocol violation that closes the
/// connection, exactly like a response-role type.
bool IsPlausibleRequestType(std::uint8_t type);

/// Machine-readable cause carried by every v3 kError payload (satellite of
/// the wire-v3 redesign: clients branch on the code, never on message
/// text). Codes are part of the wire contract — append, never renumber.
enum class ErrorCode : std::uint16_t {
  /// No code on the wire (v2-layout error) or an unrecognized value.
  kUnknown = 0,
  kSessionUnknown = 1,     // no such session (or its reload failed)
  kSessionExists = 2,      // create of an id that is already live
  kNotAttached = 3,        // session not attached to this connection
  kAttachedElsewhere = 4,  // session attached to another connection
  kWrongHomeReactor = 5,   // session pinned to a different reactor
  kUnsupportedRequest = 6, // plausible request type this server lacks
  kMalformedPayload = 7,   // undecodable or semantically invalid payload
  kLearnFailed = 8,        // CreateSession's offline learning failed
  kIngestFailed = 9,       // service refused the batch
  kCheckpointFailed = 10,  // checkpoint write failed / no directory
  kStatsUnavailable = 11,  // stats scrape not available on this server
  kTracingDisabled = 12,   // flight recorder not enabled
  kFeedbackFailed = 13,    // detector refused the feedback round

  // Client-local codes (never sent by a server).
  kInvalidArgument = 100,  // refused client-side before any send
  kTransport = 101,        // connection failed mid-conversation
};

/// Stable lower-case name (for logs and tools; never parsed back).
const char* ErrorCodeName(ErrorCode code);

/// IEEE CRC-32 (the zlib/PNG polynomial, reflected).
std::uint32_t Crc32(const void* data, std::size_t len);

// --------------------------------------------------------- byte buffers --

/// Append-only little-endian byte-buffer writer (the in-memory sibling of
/// CheckpointWriter; same byte layout, funneled through U8/U32/U64/F64).
class WireWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// Raw IEEE-754 bit pattern: the value decodes bit-identically.
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// Length-prefixed byte string.
  void Str(const std::string& s);

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a byte buffer. Mirrors
/// CheckpointReader: every accessor returns a neutral value once a read
/// overruns the buffer, and ok() reports the sticky failure.
class WireReader {
 public:
  WireReader(const char* data, std::size_t len) : data_(data), len_(len) {}
  explicit WireReader(const std::string& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();

  /// Marks the read as failed (semantic validation error); always returns
  /// false so `return reader.Fail();` reads naturally in decoders.
  bool Fail();

  bool ok() const { return !failed_; }
  /// True when every byte has been consumed (decoders require this so a
  /// payload with trailing junk is rejected, not silently accepted).
  bool AtEnd() const { return !failed_ && pos_ == len_; }
  /// Bytes not yet consumed (decoders bound element counts against this
  /// before allocating, so a corrupt count cannot trigger a huge alloc).
  std::size_t remaining() const { return failed_ ? 0 : len_ - pos_; }

 private:
  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// ---------------------------------------------------------------- frames --

struct Frame {
  MsgType type = MsgType::kError;
  /// The version byte the frame arrived under (within [kMinWireVersion,
  /// kWireVersion]); version-dependent payload layouts (kError) decode
  /// against it, and servers reply in the highest version a connection
  /// has demonstrated.
  std::uint8_t version = kWireVersion;
  std::string payload;
};

/// Serializes one frame (header + payload) ready for the socket, stamped
/// with `version` (callers pass a peer's negotiated version to answer
/// older clients in their own dialect).
std::string EncodeFrame(MsgType type, const std::string& payload,
                        std::uint8_t version = kWireVersion);

/// Incremental frame parser over an arriving byte stream.
///
/// Feed bytes with Append() as they arrive; Next() yields complete frames.
/// Corruption (bad magic, a version outside [kMinWireVersion,
/// kWireVersion], non-zero flags, CRC mismatch, payload over
/// `max_payload`) is terminal: the decoder latches kCorrupt and the
/// connection must be closed. Truncation is simply kNeedMore.
///
/// Memory bound: every kNeedMore return reclaims the prefix consumed by
/// already-delivered frames, so the internal buffer never holds more than
/// one in-flight frame (<= 16 + max_payload bytes) plus whatever the last
/// Append delivered — a connection cannot grow it without bound by pacing
/// frames across reads.
class FrameDecoder {
 public:
  enum class Status { kFrame, kNeedMore, kCorrupt };

  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Append(const char* data, std::size_t len);

  Status Next(Frame* out);

  /// Human-readable reason after kCorrupt.
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed by complete frames.
  std::size_t buffered() const { return buf_.size() - off_; }

  /// Total bytes held internally, including any consumed-but-unreclaimed
  /// prefix (observability for the memory-bound regression test).
  std::size_t buffer_bytes() const { return buf_.size(); }

 private:
  Status Corrupt(const std::string& reason);
  /// Erases the consumed prefix so drained Next() loops leave at most one
  /// partial frame buffered (see the class-level memory bound).
  void Reclaim();

  std::size_t max_payload_;
  std::string buf_;
  std::size_t off_ = 0;
  bool corrupt_ = false;
  std::string error_;
};

// -------------------------------------------------------- request codecs --

struct CreateSessionReq {
  std::string session_id;
  SpotConfig config;
  std::vector<std::vector<double>> training;  // rectangular, row-major
};

struct ResumeSessionReq {
  std::string session_id;
};

struct IngestReq {
  std::string session_id;
  std::vector<DataPoint> points;  // all the same dimension
};

struct FlushReq {
  std::string session_id;  // "" = every session of the connection
};

struct CheckpointReq {
  std::string session_id;  // "" = CheckpointAll
};

struct CloseSessionReq {
  std::string session_id;
  bool persist = true;
};

/// (v3) Supervised feedback: label previously ingested points by id
/// (resolved against the session's top-k retention window server-side)
/// and/or submit fresh labeled outlier examples (rectangular, the
/// session's dimensionality). Answered kOk/kError after the round ran at
/// a batch boundary of the session's stream.
struct FeedbackReq {
  std::string session_id;
  std::vector<std::uint64_t> point_ids;
  std::vector<std::vector<double>> examples;  // rectangular, row-major
};

/// (v3) Ask for the k worst outliers in the session's current window.
struct QueryTopKReq {
  std::string session_id;
  std::uint32_t k = 0;
};

std::string EncodeCreateSession(const CreateSessionReq& req);
bool DecodeCreateSession(const std::string& payload, CreateSessionReq* out);

std::string EncodeResumeSession(const ResumeSessionReq& req);
bool DecodeResumeSession(const std::string& payload, ResumeSessionReq* out);

std::string EncodeIngest(const IngestReq& req);
bool DecodeIngest(const std::string& payload, IngestReq* out);

std::string EncodeFlush(const FlushReq& req);
bool DecodeFlush(const std::string& payload, FlushReq* out);

std::string EncodeCheckpoint(const CheckpointReq& req);
bool DecodeCheckpoint(const std::string& payload, CheckpointReq* out);

std::string EncodeCloseSession(const CloseSessionReq& req);
bool DecodeCloseSession(const std::string& payload, CloseSessionReq* out);

std::string EncodeFeedback(const FeedbackReq& req);
bool DecodeFeedback(const std::string& payload, FeedbackReq* out);

std::string EncodeQueryTopK(const QueryTopKReq& req);
bool DecodeQueryTopK(const std::string& payload, QueryTopKReq* out);

// ------------------------------------------------------- response codecs --

struct OkResp {
  std::uint8_t request_type = 0;  // the MsgType this Ok answers
};

/// kError payload. The v3 layout is `u8 request_type, u16 code, str
/// message`; the v2 layout lacks the code field. Encode/Decode take the
/// enclosing frame's version so both dialects round-trip; a v2-layout
/// error decodes with code == kUnknown.
struct ErrorResp {
  std::uint8_t request_type = 0;
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
};

/// Verdicts for one coalesced run of a session's ingested points, in point
/// order. `first_point_id` is the DataPoint::id of the first covered point
/// (a client-side ordering sanity check, not a correlation key: verdicts
/// are matched to points purely by per-session arrival order).
struct VerdictsResp {
  std::string session_id;
  std::uint64_t first_point_id = 0;
  std::vector<SpotResult> verdicts;
};

std::string EncodeOk(const OkResp& resp);
bool DecodeOk(const std::string& payload, OkResp* out);

std::string EncodeError(const ErrorResp& resp,
                        std::uint8_t version = kWireVersion);
bool DecodeError(const std::string& payload, ErrorResp* out,
                 std::uint8_t version = kWireVersion);

std::string EncodeVerdicts(const VerdictsResp& resp);
bool DecodeVerdicts(const std::string& payload, VerdictsResp* out);

/// Whole-server metrics snapshot (answers kStats; DESIGN.md Section 9).
/// One section per reactor (pipeline-stage histograms + transport
/// counters + connection gauges) and one per service shard (checkpoint
/// durations, eviction/reload counters, resident-session gauges), plus
/// the cross-reactor hand-off counter from the session registry. A
/// kStats *request* carries an empty payload; anything else is malformed
/// and closes the connection like any other bad request payload.
/// The per-session detection-quality sections of a kStatsResp (v2) are
/// the service layer's obs::SessionQuality snapshots, carried verbatim.
using SubspaceQuality = obs::SubspaceQuality;
using SessionQuality = obs::SessionQuality;

struct StatsResp {
  std::vector<obs::MetricsSnapshot> reactors;  // index == reactor index
  std::vector<obs::MetricsSnapshot> services;  // index == shard index
  std::vector<SessionQuality> sessions;        // every resident session
  std::uint64_t sessions_handed_off = 0;

  /// Everything folded into one snapshot (counters/gauges sum,
  /// histograms merge; the hand-off counter appears as
  /// "sessions_handed_off").
  obs::MetricsSnapshot Merged() const;
};

std::string EncodeStats(const StatsResp& resp);
bool DecodeStats(const std::string& payload, StatsResp* out);

/// Canonical byte encoding of a verdict list (the kVerdicts payload body,
/// doubles as raw bit patterns). Two verdict sequences are equal *as
/// detector output* iff their VerdictBytes match — the differential tests
/// and the loadgen's --verify mode compare server round-trip verdicts to
/// in-process SpotService output through exactly this function.
void EncodeVerdictList(const std::vector<SpotResult>& verdicts,
                       WireWriter* w);
bool DecodeVerdictList(WireReader* r, std::vector<SpotResult>* out);
std::string VerdictBytes(const std::vector<SpotResult>& verdicts);

/// (v3) Answers kQueryTopK: the session's k worst current outliers, best
/// first. Each entry carries identity (point id + tick), raw and decayed
/// score, and the outlying-subspace findings — but *not* the point's
/// attribute values, which stay server-side (label them by id via
/// kFeedback instead of re-uploading them).
struct TopKResp {
  std::string session_id;
  std::vector<TopKEntry> entries;
};

std::string EncodeTopK(const TopKResp& resp);
bool DecodeTopK(const std::string& payload, TopKResp* out);

/// Canonical byte encoding of a top-k entry list (the kTopKResp payload
/// body, values omitted — the VerdictBytes sibling for query results).
/// Two top-k answers are equal iff their TopKBytes match; the loadgen's
/// --verify mode and the differential tests compare through this.
void EncodeTopKEntryList(const std::vector<TopKEntry>& entries,
                         WireWriter* w);
bool DecodeTopKEntryList(WireReader* r, std::vector<TopKEntry>* out);
std::string TopKBytes(const std::vector<TopKEntry>& entries);

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_PROTOCOL_H_
