#ifndef SPOT_NET_SPOT_CLIENT_H_
#define SPOT_NET_SPOT_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/spot_config.h"
#include "net/protocol.h"
#include "stream/data_point.h"

namespace spot {
namespace net {

/// Small blocking client for the SPOT wire protocol (DESIGN.md Section 7).
///
/// Ingest is *pipelined*: it writes the frame and returns without waiting,
/// so a caller can stream many batches back-to-back and let the server
/// coalesce them. Verdicts arriving meanwhile are drained opportunistically
/// (non-blocking) after every send — which is what keeps a deep pipeline
/// deadlock-free: the server's write-side backpressure stops reading when
/// its outbound queue fills, and a client that only wrote without ever
/// reading would wedge both sides. Flush() is the barrier: it blocks until
/// the server confirms every pending point of the session was processed,
/// and returns the session's verdicts accumulated since the last barrier,
/// one per ingested point in point order.
///
/// The client is single-threaded and not thread-safe; use one client per
/// connection (the load generator runs one per worker thread).
class SpotClient {
 public:
  SpotClient() = default;
  ~SpotClient();

  SpotClient(const SpotClient&) = delete;
  SpotClient& operator=(const SpotClient&) = delete;

  /// Connects to `host:port` (IPv4 dotted quad or "localhost").
  bool Connect(const std::string& host, std::uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Creates and learns a session on the server (blocks for the Ok).
  /// `training` must be rectangular — the wire carries one rows*dims
  /// matrix — so a ragged input fails fast here (row named in
  /// last_error()) without touching the connection.
  bool CreateSession(const std::string& id, const SpotConfig& config,
                     const std::vector<std::vector<double>>& training);

  /// Re-attaches a session that is live on the server or resumable from
  /// its checkpoint directory (blocks for the Ok).
  bool ResumeSession(const std::string& id);

  /// Pipelined ingest: sends the batch and returns. Verdicts are
  /// collected per session and handed out by the next Flush(). Every
  /// point in the batch must have the same dimension (fails fast
  /// client-side otherwise, like CreateSession's training matrix).
  bool Ingest(const std::string& id, const std::vector<DataPoint>& points);

  /// Barrier: forces the server to process everything pending for `id`
  /// and appends all of the session's verdicts received since the last
  /// Flush() to `verdicts` (nullptr discards them). Blocks for the Ok.
  bool Flush(const std::string& id, std::vector<SpotResult>* verdicts);

  /// Server-side checkpoint of `id`, or of every session when `id` is
  /// empty (blocks for the Ok).
  bool Checkpoint(const std::string& id = "");

  /// Scrapes the server's observability snapshot (blocks for the
  /// kStatsResp; interleaved verdicts are stashed as usual). Returns
  /// false when the server answers with an error or predates the kStats
  /// request — servers older than the stats protocol treat the unknown
  /// type as malformed and close the connection, so callers wanting a
  /// graceful "unsupported" probe should scrape on a dedicated client.
  bool Stats(StatsResp* out);

  /// Dumps the server's flight recorder (blocks for the kTraceResp;
  /// interleaved verdicts are stashed as usual). `json` receives the raw
  /// Chrome-trace JSON bytes. False when tracing is disabled server-side
  /// (the server answers kError) or on a transport error. Same
  /// old-server caveat as Stats(): a pre-v2 server closes the connection
  /// on the unknown request type.
  bool TraceDump(std::string* json);

  /// Closes the session on the server. Implies a flush of its pending
  /// points; trailing verdicts are appended to `verdicts` when non-null.
  bool CloseSession(const std::string& id, bool persist = true,
                    std::vector<SpotResult>* verdicts = nullptr);

  /// Wire payload cap in both directions: requests over it are refused
  /// fail-fast (an over-cap frame is connection-fatal server-side), and
  /// Connect() sizes the receive decoder with it. Defaults to the
  /// protocol's kDefaultMaxPayloadBytes; set it BEFORE Connect() to
  /// match a server with a non-default SpotServerConfig::max_payload_bytes.
  void set_max_payload(std::size_t bytes) { max_payload_ = bytes; }
  std::size_t max_payload() const { return max_payload_; }

  /// Last transport or server-reported error (empty when none).
  const std::string& last_error() const { return last_error_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  /// Writes one frame fully (blocking). False on a transport error.
  bool SendFrame(MsgType type, const std::string& payload);
  /// Blocks until a kOk/kError for `request` arrives, stashing kVerdicts
  /// frames seen on the way. False on kError (message in last_error_) or
  /// a transport error.
  bool AwaitResponse(MsgType request);
  /// Non-blocking read: stashes any already-arrived frames.
  bool DrainPending();
  /// Parses every complete frame currently buffered. `done` is set when a
  /// kOk/kError for `request` was consumed (pass kOk in `request_seen`).
  bool ConsumeFrames(MsgType request, bool* done, bool* ok);
  /// ConsumeFrames variant for the stats scrape: resolves on kStatsResp
  /// (decoded into `out`) instead of kOk.
  bool ConsumeStatsFrames(StatsResp* out, bool* done, bool* ok);
  /// ConsumeFrames variant for the trace dump: resolves on kTraceResp
  /// (raw JSON moved into `json`) instead of kOk.
  bool ConsumeTraceFrames(std::string* json, bool* done, bool* ok);
  bool StashVerdicts(const Frame& frame);
  void FailTransport(const std::string& what);

  int fd_ = -1;
  std::size_t max_payload_ = kDefaultMaxPayloadBytes;
  FrameDecoder decoder_;
  std::string last_error_;
  std::map<std::string, std::vector<SpotResult>> stash_;
  /// Ids of ingested points awaiting verdicts, per session. Each arriving
  /// verdict run is checked against this queue: its first_point_id must
  /// match the oldest outstanding point and it must not cover more points
  /// than are outstanding — a server delivering runs out of order or for
  /// the wrong offset fails the transport instead of silently
  /// mis-attributing verdicts.
  std::map<std::string, std::deque<std::uint64_t>> outstanding_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_SPOT_CLIENT_H_
