#ifndef SPOT_NET_SPOT_CLIENT_H_
#define SPOT_NET_SPOT_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/spot_config.h"
#include "net/protocol.h"
#include "stream/data_point.h"

namespace spot {
namespace net {

/// Uniform status of one client RPC (DESIGN.md Section 11): every
/// SpotClient call returns the same shape — success, a machine-readable
/// ErrorCode, and a human-readable cause — so callers branch on the code
/// and never on message text. `code` distinguishes server refusals
/// (carried on the wire by a v3 kError), client-side validation failures
/// (kInvalidArgument, nothing was sent) and transport breakage
/// (kTransport, the connection is gone). Tests in boolean contexts as
/// `if (!status)`; the explicit conversion keeps it out of arithmetic.
struct RpcStatus {
  bool ok = true;
  ErrorCode code = ErrorCode::kUnknown;
  std::string cause;

  explicit operator bool() const { return ok; }

  static RpcStatus Success() { return RpcStatus{}; }
  static RpcStatus Failure(ErrorCode code, std::string cause) {
    RpcStatus s;
    s.ok = false;
    s.code = code;
    s.cause = std::move(cause);
    return s;
  }
};

/// Small blocking client for the SPOT wire protocol (DESIGN.md Section 7).
///
/// Ingest is *pipelined*: it writes the frame and returns without waiting,
/// so a caller can stream many batches back-to-back and let the server
/// coalesce them. Verdicts arriving meanwhile are drained opportunistically
/// (non-blocking) after every send — which is what keeps a deep pipeline
/// deadlock-free: the server's write-side backpressure stops reading when
/// its outbound queue fills, and a client that only wrote without ever
/// reading would wedge both sides. Flush() is the barrier: it blocks until
/// the server confirms every pending point of the session was processed,
/// and returns the session's verdicts accumulated since the last barrier,
/// one per ingested point in point order.
///
/// Version negotiation (wire v3): the client stamps its frames with
/// wire_version() (default kWireVersion) and decodes version-dependent
/// payloads (kError) against the version of the frame that carried them.
/// Against a server that lacks the v3 request types, Feedback() and
/// TopK() degrade gracefully: the server's refusal comes back as a plain
/// RpcStatus with code kUnsupportedRequest — whether the server said so
/// explicitly (v3 layout) or implied it by refusing a v3-only request in
/// a v2-layout error — and the connection stays usable.
///
/// The client is single-threaded and not thread-safe; use one client per
/// connection (the load generator runs one per worker thread).
class SpotClient {
 public:
  SpotClient() = default;
  ~SpotClient();

  SpotClient(const SpotClient&) = delete;
  SpotClient& operator=(const SpotClient&) = delete;

  /// Connects to `host:port` (IPv4 dotted quad or "localhost").
  RpcStatus Connect(const std::string& host, std::uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Creates and learns a session on the server (blocks for the Ok).
  /// `training` must be rectangular — the wire carries one rows*dims
  /// matrix — so a ragged input fails fast here (kInvalidArgument, row
  /// named in the cause) without touching the connection.
  RpcStatus CreateSession(const std::string& id, const SpotConfig& config,
                          const std::vector<std::vector<double>>& training);

  /// Re-attaches a session that is live on the server or resumable from
  /// its checkpoint directory (blocks for the Ok).
  RpcStatus ResumeSession(const std::string& id);

  /// Pipelined ingest: sends the batch and returns. Verdicts are
  /// collected per session and handed out by the next Flush(). Every
  /// point in the batch must have the same dimension (fails fast
  /// client-side otherwise, like CreateSession's training matrix).
  RpcStatus Ingest(const std::string& id,
                   const std::vector<DataPoint>& points);

  /// Barrier: forces the server to process everything pending for `id`
  /// and appends all of the session's verdicts received since the last
  /// Flush() to `verdicts` (nullptr discards them). Blocks for the Ok.
  RpcStatus Flush(const std::string& id, std::vector<SpotResult>* verdicts);

  /// Server-side checkpoint of `id`, or of every session when `id` is
  /// empty (blocks for the Ok).
  RpcStatus Checkpoint(const std::string& id = "");

  /// (v3) Supervised feedback round: label previously ingested points by
  /// id — they must still be retained in the session's top-k window
  /// server-side — and/or submit fresh labeled outlier examples of the
  /// session's dimensionality. The server forces a batch boundary first,
  /// so the round lands at the same stream position an in-process caller
  /// would see, and the verdict stream stays bit-identical. Blocks for
  /// the Ok; code kUnsupportedRequest against a pre-v3 server (the
  /// connection stays usable).
  RpcStatus Feedback(const std::string& id,
                     const std::vector<std::uint64_t>& point_ids,
                     const std::vector<std::vector<double>>& examples);

  /// (v3) Streaming top-k query: the session's k worst outliers in the
  /// current (omega, epsilon)-decayed window, best first, with their
  /// outlying-subspace findings. Read-only server-side — interleaving
  /// queries never perturbs the verdict stream. Blocks for the
  /// kTopKResp; code kUnsupportedRequest against a pre-v3 server.
  RpcStatus TopK(const std::string& id, std::uint32_t k,
                 std::vector<TopKEntry>* out);

  /// Scrapes the server's observability snapshot (blocks for the
  /// kStatsResp; interleaved verdicts are stashed as usual). Fails when
  /// the server answers with an error or predates the kStats request —
  /// servers older than the stats protocol treat the unknown type as
  /// malformed and close the connection, so callers wanting a graceful
  /// "unsupported" probe should scrape on a dedicated client.
  RpcStatus Stats(StatsResp* out);

  /// Dumps the server's flight recorder (blocks for the kTraceResp;
  /// interleaved verdicts are stashed as usual). `json` receives the raw
  /// Chrome-trace JSON bytes. Fails with kTracingDisabled when the
  /// recorder is off server-side. Same old-server caveat as Stats(): a
  /// pre-v2 server closes the connection on the unknown request type.
  RpcStatus TraceDump(std::string* json);

  /// Closes the session on the server. Implies a flush of its pending
  /// points; trailing verdicts are appended to `verdicts` when non-null.
  RpcStatus CloseSession(const std::string& id, bool persist = true,
                         std::vector<SpotResult>* verdicts = nullptr);

  /// Wire payload cap in both directions: requests over it are refused
  /// fail-fast (an over-cap frame is connection-fatal server-side), and
  /// Connect() sizes the receive decoder with it. Defaults to the
  /// protocol's kDefaultMaxPayloadBytes; set it BEFORE Connect() to
  /// match a server with a non-default SpotServerConfig::max_payload_bytes.
  void set_max_payload(std::size_t bytes) { max_payload_ = bytes; }
  std::size_t max_payload() const { return max_payload_; }

  /// Version this client stamps its frames with (and therefore the
  /// highest dialect a version-negotiating server will answer it in).
  /// Default kWireVersion; the negotiation tests set 2 to impersonate a
  /// v2-era client against a v3 server.
  void set_wire_version(std::uint8_t version) { wire_version_ = version; }
  std::uint8_t wire_version() const { return wire_version_; }

  /// Cause of the last failed call (empty when none) — the same string
  /// as the returned RpcStatus::cause, kept for log lines and tools.
  const std::string& last_error() const { return last_error_; }
  /// Code of the last failed call (kUnknown when none failed yet).
  ErrorCode last_code() const { return last_code_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  /// Writes one frame fully (blocking). False on a transport error.
  bool SendFrame(MsgType type, const std::string& payload);
  /// Blocks until a kOk/kError for `request` arrives, stashing kVerdicts
  /// frames seen on the way. False on kError (cause in last_error_,
  /// code in last_code_) or a transport error.
  bool AwaitResponse(MsgType request);
  /// Non-blocking read: stashes any already-arrived frames.
  bool DrainPending();
  /// Parses every complete frame currently buffered. `done` is set when a
  /// kOk/kError for `request` was consumed (pass kOk in `request_seen`).
  bool ConsumeFrames(MsgType request, bool* done, bool* ok);
  /// ConsumeFrames variant for the stats scrape: resolves on kStatsResp
  /// (decoded into `out`) instead of kOk.
  bool ConsumeStatsFrames(StatsResp* out, bool* done, bool* ok);
  /// ConsumeFrames variant for the trace dump: resolves on kTraceResp
  /// (raw JSON moved into `json`) instead of kOk.
  bool ConsumeTraceFrames(std::string* json, bool* done, bool* ok);
  /// ConsumeFrames variant for the top-k query: resolves on kTopKResp
  /// for `id` (entries moved into `out`) instead of kOk.
  bool ConsumeTopKFrames(const std::string& id,
                         std::vector<TopKEntry>* out, bool* done, bool* ok);
  bool StashVerdicts(const Frame& frame);
  /// Decodes a kError frame against its version, records cause + code
  /// (applying the v2-degradation mapping for `request`), and leaves the
  /// connection open. False only when the frame itself is malformed.
  bool RecordServerError(const Frame& frame, MsgType request);
  void FailTransport(const std::string& what);
  void FailInvalid(const std::string& what);
  /// The RpcStatus for the bool the internal helpers produced.
  RpcStatus Finish(bool ok);

  int fd_ = -1;
  std::size_t max_payload_ = kDefaultMaxPayloadBytes;
  std::uint8_t wire_version_ = kWireVersion;
  FrameDecoder decoder_;
  std::string last_error_;
  ErrorCode last_code_ = ErrorCode::kUnknown;
  std::map<std::string, std::vector<SpotResult>> stash_;
  /// Ids of ingested points awaiting verdicts, per session. Each arriving
  /// verdict run is checked against this queue: its first_point_id must
  /// match the oldest outstanding point and it must not cover more points
  /// than are outstanding — a server delivering runs out of order or for
  /// the wrong offset fails the transport instead of silently
  /// mis-attributing verdicts.
  std::map<std::string, std::deque<std::uint64_t>> outstanding_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace net
}  // namespace spot

#endif  // SPOT_NET_SPOT_CLIENT_H_
