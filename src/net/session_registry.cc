#include "net/session_registry.h"

#include <utility>

#include "common/log.h"
#include "service/spot_service.h"

namespace spot {
namespace net {

SessionRegistry::SessionRegistry(std::vector<SpotService*> services,
                                 bool allow_handoff)
    : services_(std::move(services)), allow_handoff_(allow_handoff) {}

bool SessionRegistry::BeginCreate(const std::string& id, int reactor,
                                  int conn_fd, std::string* error,
                                  ErrorCode* code) {
  std::lock_guard<std::mutex> lock(mu_);
  if (owners_.find(id) != owners_.end()) {
    *error = "session '" + id + "' already exists";
    *code = ErrorCode::kSessionExists;
    return false;
  }
  // A session created directly in a service (embedders, tests) has no
  // registry entry yet; it still blocks the id.
  for (const SpotService* service : services_) {
    if (service->HasSession(id)) {
      *error = "session '" + id + "' already exists";
      *code = ErrorCode::kSessionExists;
      return false;
    }
  }
  owners_[id] = Owner{reactor, reactor, conn_fd};
  return true;
}

bool SessionRegistry::Attach(const std::string& id, int reactor,
                             int conn_fd, std::string* error,
                             ErrorCode* code) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owners_.find(id);
  if (it != owners_.end()) {
    Owner& owner = it->second;
    if (owner.attached()) {
      if (owner.conn_reactor == reactor && owner.conn_fd == conn_fd) {
        return true;  // idempotent re-resume on the owning connection
      }
      *error = "session '" + id +
               "' is attached to another connection (on reactor " +
               std::to_string(owner.conn_reactor) + ")";
      *code = ErrorCode::kAttachedElsewhere;
      return false;
    }
    if (owner.home == reactor) {
      owner.conn_reactor = reactor;
      owner.conn_fd = conn_fd;
      return true;
    }
    // Unattached on another reactor: hand the state off through the
    // shared checkpoint directory. Bit-identical by the checkpoint
    // round-trip guarantee; the registry lock serializes competing
    // resumes so the close/open pair is atomic against them.
    if (!allow_handoff_) {
      *error = "session '" + id + "' lives on reactor " +
               std::to_string(owner.home) +
               " and no checkpoint directory is configured for hand-off";
      *code = ErrorCode::kWrongHomeReactor;
      return false;
    }
    if (!services_[static_cast<std::size_t>(owner.home)]->CloseSession(
            id, /*persist=*/true)) {
      *error = "hand-off checkpoint of session '" + id + "' from reactor " +
               std::to_string(owner.home) + " failed";
      *code = ErrorCode::kCheckpointFailed;
      return false;
    }
    if (!services_[static_cast<std::size_t>(reactor)]->OpenSession(id)) {
      // The state is on disk but this shard cannot load it; the entry is
      // stale either way.
      owners_.erase(it);
      *error = "hand-off reopen of session '" + id + "' on reactor " +
               std::to_string(reactor) + " failed";
      *code = ErrorCode::kCheckpointFailed;
      return false;
    }
    SPOT_LOG(Info) << "session '" << id << "' handed off: reactor "
                   << owner.home << " -> " << reactor;
    ++handoffs_;
    owner.home = reactor;
    owner.conn_reactor = reactor;
    owner.conn_fd = conn_fd;
    return true;
  }

  // No registry entry: the session may be resident in this reactor's
  // service already (created directly by an embedder), resumable from its
  // checkpoint, or resident in another reactor's service (hand off).
  SpotService* own = services_[static_cast<std::size_t>(reactor)];
  if (own->HasSession(id) || own->OpenSession(id)) {
    owners_[id] = Owner{reactor, reactor, conn_fd};
    return true;
  }
  for (std::size_t q = 0; q < services_.size(); ++q) {
    if (static_cast<int>(q) == reactor || !services_[q]->HasSession(id)) {
      continue;
    }
    if (!allow_handoff_) {
      *error = "session '" + id + "' lives on reactor " + std::to_string(q) +
               " and no checkpoint directory is configured for hand-off";
      *code = ErrorCode::kWrongHomeReactor;
      return false;
    }
    if (!services_[q]->CloseSession(id, /*persist=*/true) ||
        !own->OpenSession(id)) {
      *error = "hand-off of session '" + id + "' from reactor " +
               std::to_string(q) + " failed";
      *code = ErrorCode::kCheckpointFailed;
      return false;
    }
    ++handoffs_;
    owners_[id] = Owner{reactor, reactor, conn_fd};
    return true;
  }
  *error = "no session or checkpoint for '" + id + "'";
  *code = ErrorCode::kSessionUnknown;
  return false;
}

void SessionRegistry::Detach(const std::string& id, int reactor,
                             int conn_fd) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owners_.find(id);
  if (it == owners_.end()) return;
  Owner& owner = it->second;
  if (owner.conn_reactor != reactor || owner.conn_fd != conn_fd) return;
  owner.conn_reactor = -1;
  owner.conn_fd = -1;
}

void SessionRegistry::Forget(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  owners_.erase(id);
}

std::size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owners_.size();
}

std::uint64_t SessionRegistry::handoffs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return handoffs_;
}

}  // namespace net
}  // namespace spot
