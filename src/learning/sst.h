#ifndef SPOT_LEARNING_SST_H_
#define SPOT_LEARNING_SST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "subspace/subspace.h"
#include "subspace/subspace_set.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;
class DetectorEventSink;

/// Which SST subset a subspace belongs to.
enum class SstSubset { kFixed, kClustering, kOutlierDriven };

/// Sparse Subspace Template (paper, Section II-C): the set of subspaces in
/// which every streaming point is checked for outlier-ness. Union of three
/// mutually supplementing subsets:
///
///  * FS — Fixed SST Subspaces: the full lattice up to MaxDimension.
///    Static; guarantees low-dimensional coverage.
///  * CS — Clustering-based SST Subspaces: top sparse subspaces of the most
///    outlying training points (unsupervised learning). Capacity-bounded,
///    re-ranked and regenerated online (self-evolution).
///  * OS — Outlier-driven SST Subspaces: top sparse subspaces of expert-
///    provided outlier examples, and of every outlier detected online.
///    Capacity-bounded with worst-score eviction.
class Sst {
 public:
  Sst(std::size_t cs_capacity, std::size_t os_capacity);

  /// Replaces FS wholesale (built once from the lattice).
  void SetFixed(std::vector<Subspace> fs);

  /// Inserts into CS with a sparsity score (lower = better); evicts the
  /// worst member when over capacity. No-op for subspaces already in FS.
  void AddClustering(const Subspace& s, double score);

  /// Inserts into OS with a sparsity score; eviction as above. No-op for
  /// subspaces already in FS.
  void AddOutlierDriven(const Subspace& s, double score);

  /// Clears CS (used when drift forces relearning).
  void ClearClustering();

  /// Every distinct subspace of FS ∪ CS ∪ OS, in a *content-deterministic*
  /// order (FS in insertion order, then CS and OS by rank): two SSTs with
  /// equal contents enumerate identically regardless of the insertion /
  /// eviction history of their hash sets. The detector's subspace-tracking
  /// sync consumes this order, so it is what keeps a checkpoint-restored
  /// run tracking new grids in exactly the sequence an uninterrupted run
  /// would (DESIGN.md Section 4.3).
  std::vector<Subspace> AllSubspaces() const;

  /// True when `s` is in any subset.
  bool Contains(const Subspace& s) const;

  const std::vector<Subspace>& fixed() const { return fs_; }
  const RankedSubspaceSet& clustering() const { return cs_; }
  const RankedSubspaceSet& outlier_driven() const { return os_; }

  /// Mutable access for re-ranking during self-evolution.
  RankedSubspaceSet& mutable_clustering() { return cs_; }

  std::size_t TotalSize() const;

  /// Multi-line human-readable summary.
  std::string Summary() const;

  /// Checkpointing: FS membership plus the scored CS/OS members (in rank
  /// order) round-trip. Capacities come from the constructor; LoadState
  /// validates the stored member counts against them.
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

  /// Attaches an observability sink (borrowed; nullptr detaches): genuine
  /// CS/OS additions emit kSstInsert, ClearClustering emits kSstClear.
  /// LoadState restores members without events — a checkpoint restore is
  /// not churn. Pure reporting; SST contents never depend on the sink.
  void set_event_sink(DetectorEventSink* sink) { sink_ = sink; }

 private:
  bool InFixed(const Subspace& s) const;

  std::vector<Subspace> fs_;
  RankedSubspaceSet cs_;
  RankedSubspaceSet os_;
  DetectorEventSink* sink_ = nullptr;
};

}  // namespace spot

#endif  // SPOT_LEARNING_SST_H_
