#ifndef SPOT_LEARNING_SUPERVISED_H_
#define SPOT_LEARNING_SUPERVISED_H_

#include <cstdint>
#include <vector>

#include "grid/partition.h"
#include "moga/nsga2.h"
#include "subspace/subspace.h"
#include "subspace/subspace_set.h"

namespace spot {

/// Domain knowledge accepted by the supervised learning path (paper,
/// Section II-C1 "Supervised Learning").
struct DomainKnowledge {
  /// Labeled projected-outlier examples provided by experts.
  std::vector<std::vector<double>> outlier_examples;

  /// Attributes known to be relevant to the detection task; when non-empty,
  /// MOGA's search is restricted to this set ("removal of irrelevant
  /// attributes to speed up the learning process").
  std::vector<int> relevant_attributes;
};

/// Knobs of the supervised pipeline.
struct SupervisedConfig {
  Nsga2Config moga;
  std::size_t top_subspaces_per_example = 4;
};

/// Runs MOGA on each expert-provided outlier example against the training
/// batch and returns the union of their top sparse subspaces — the OS
/// subset of the SST. When `knowledge.relevant_attributes` is non-empty the
/// search lattice is restricted to those attributes.
std::vector<ScoredSubspace> LearnOutlierDrivenSubspaces(
    const std::vector<std::vector<double>>& training_data,
    const Partition& partition, const DomainKnowledge& knowledge,
    const SupervisedConfig& config, std::uint64_t seed);

}  // namespace spot

#endif  // SPOT_LEARNING_SUPERVISED_H_
