#ifndef SPOT_LEARNING_LEAD_CLUSTERING_H_
#define SPOT_LEARNING_LEAD_CLUSTERING_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace spot {

/// Result of one lead-clustering pass: per-point cluster assignment plus
/// cluster sizes and leader indices.
struct LeadClusteringResult {
  std::vector<int> assignment;       // point index -> cluster id
  std::vector<std::size_t> sizes;    // cluster id -> member count
  std::vector<std::size_t> leaders;  // cluster id -> index of its leader
};

/// Single-pass lead (leader) clustering — the cheap clustering the paper's
/// unsupervised learning uses to score training data's outlying degree.
///
/// Points are visited in the order given by `order` (a permutation of
/// [0, n)). The first point becomes a leader; each subsequent point joins
/// the nearest existing leader if within `threshold` (Euclidean distance),
/// otherwise it founds a new cluster.
LeadClusteringResult LeadCluster(const std::vector<std::vector<double>>& data,
                                 const std::vector<std::size_t>& order,
                                 double threshold);

/// Heuristic distance threshold: `scale` times the lower-quartile pairwise
/// distance of a random sample of `sample_size` points. The lower quartile
/// tracks the intra-cluster distance scale even when well-separated
/// clusters push the median toward the inter-cluster scale; the default
/// scale of 3 then approximates a cluster diameter.
double EstimateLeadThreshold(const std::vector<std::vector<double>>& data,
                             Rng& rng, std::size_t sample_size = 200,
                             double scale = 3.0);

}  // namespace spot

#endif  // SPOT_LEARNING_LEAD_CLUSTERING_H_
