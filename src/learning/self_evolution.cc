#include "learning/self_evolution.h"

#include <algorithm>

#include "moga/objectives.h"
#include "moga/operators.h"

namespace spot {

std::size_t EvolveClusteringSubspaces(
    Sst* sst, const Partition& partition,
    const std::vector<std::vector<double>>& recent_sample,
    const SelfEvolutionConfig& config, Rng& rng) {
  if (recent_sample.empty() || sst->clustering().empty()) return 0;

  const int num_dims = partition.num_dims();
  BatchSparsityObjectives obj(&partition, &recent_sample);

  // Parent pool: the current top of CS.
  std::vector<Subspace> parents =
      sst->clustering().TopK(std::max<std::size_t>(2, config.parent_pool));

  // Generate offspring by crossover + mutation of random parent pairs.
  std::vector<Subspace> offspring;
  offspring.reserve(config.offspring);
  for (std::size_t i = 0; i < config.offspring; ++i) {
    const Subspace& p1 =
        parents[static_cast<std::size_t>(rng.NextUint64(parents.size()))];
    const Subspace& p2 =
        parents[static_cast<std::size_t>(rng.NextUint64(parents.size()))];
    Subspace child = UniformCrossover(p1, p2, rng);
    child = BitFlipMutation(child, num_dims, config.mutation_prob, rng);
    child = Repair(child, num_dims, config.max_dimension, rng);
    offspring.push_back(child);
  }

  // Re-rank: rescore every current member and every offspring against the
  // recent sample, then rebuild CS (its capacity evicts the worst).
  RankedSubspaceSet& cs = sst->mutable_clustering();
  const std::vector<Subspace> current = cs.Members();
  const std::size_t capacity = cs.capacity();
  RankedSubspaceSet next(capacity);
  for (const auto& s : current) next.Insert(s, obj.SparsityScore(s));
  for (const auto& s : offspring) next.Insert(s, obj.SparsityScore(s));

  std::size_t admitted = 0;
  for (const auto& s : offspring) {
    bool was_member = false;
    for (const auto& c : current) {
      if (c == s) {
        was_member = true;
        break;
      }
    }
    if (!was_member && next.Contains(s)) ++admitted;
  }
  cs = std::move(next);
  return admitted;
}

}  // namespace spot
