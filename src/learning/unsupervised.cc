#include "learning/unsupervised.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "moga/moga_search.h"
#include "moga/objectives.h"

namespace spot {

std::vector<ScoredSubspace> LearnClusteringSubspaces(
    const std::vector<std::vector<double>>& training_data,
    const Partition& partition, const UnsupervisedConfig& config,
    std::uint64_t seed) {
  std::vector<ScoredSubspace> out;
  if (training_data.empty()) return out;
  Rng rng(seed);

  // Step 1: MOGA over the whole batch — global sparse subspaces.
  BatchSparsityObjectives global_obj(&partition, &training_data);
  Nsga2Config moga_cfg = config.moga;
  moga_cfg.seed = rng.NextUint64();
  MogaSearch global_search(moga_cfg, &global_obj);
  std::vector<ScoredSubspace> global_top =
      global_search.FindTopSparse(config.top_subspaces_per_run);

  // Step 2: outlying degree of every training point via lead clustering
  // under multiple data orders.
  const std::vector<double> degrees =
      ComputeOutlyingDegrees(training_data, config.outlying_degree, rng);
  const std::vector<std::size_t> top_points =
      TopOutlyingIndices(degrees, config.top_outlying_points);

  // Step 3: MOGA targeted at each top outlying point individually ("MOGA
  // is applied again on the top training data to find their top sparse
  // subspaces"), seeded with the global discoveries. Distinct outliers hide
  // in distinct subspaces, so a per-point search is essential — a single
  // search over the whole set would blur their objectives together.
  std::vector<Subspace> seeds;
  seeds.reserve(global_top.size());
  for (const auto& ss : global_top) seeds.push_back(ss.subspace);

  // Keep the best (lowest) score seen for each discovered subspace.
  std::unordered_map<Subspace, double, SubspaceHash> best;
  for (const auto& ss : global_top) best.emplace(ss.subspace, ss.score);

  const std::size_t per_point =
      std::max<std::size_t>(2, config.top_subspaces_per_run / 2);
  for (std::size_t point : top_points) {
    BatchSparsityObjectives targeted_obj(&partition, &training_data,
                                         {point});
    moga_cfg.seed = rng.NextUint64();
    MogaSearch targeted_search(moga_cfg, &targeted_obj);
    for (const auto& ss : targeted_search.FindTopSparse(per_point, seeds)) {
      auto it = best.find(ss.subspace);
      if (it == best.end() || ss.score < it->second) {
        best[ss.subspace] = ss.score;
      }
    }
  }

  out.reserve(best.size());
  for (const auto& [subspace, score] : best) out.push_back({subspace, score});
  std::sort(out.begin(), out.end(),
            [](const ScoredSubspace& a, const ScoredSubspace& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.subspace < b.subspace;
            });
  return out;
}

}  // namespace spot
