#include "learning/supervised.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "moga/moga_search.h"
#include "moga/objectives.h"

namespace spot {

namespace {

// Projects rows onto the listed attributes (identity when dims is empty).
std::vector<std::vector<double>> ProjectRows(
    const std::vector<std::vector<double>>& rows, const std::vector<int>& dims) {
  if (dims.empty()) return rows;
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<double> r;
    r.reserve(dims.size());
    for (int d : dims) r.push_back(row[static_cast<std::size_t>(d)]);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

std::vector<ScoredSubspace> LearnOutlierDrivenSubspaces(
    const std::vector<std::vector<double>>& training_data,
    const Partition& partition, const DomainKnowledge& knowledge,
    const SupervisedConfig& config, std::uint64_t seed) {
  std::vector<ScoredSubspace> out;
  if (training_data.empty() || knowledge.outlier_examples.empty()) return out;
  Rng rng(seed);

  // Attribute-relevance restriction: remap the problem onto the relevant
  // attributes, search there, then map discovered subspaces back.
  std::vector<int> relevant = knowledge.relevant_attributes;
  std::sort(relevant.begin(), relevant.end());
  relevant.erase(std::unique(relevant.begin(), relevant.end()),
                 relevant.end());
  const bool restricted = !relevant.empty();

  std::vector<int> dims;  // reduced index -> original attribute
  if (restricted) {
    dims = relevant;
  } else {
    dims.resize(static_cast<std::size_t>(partition.num_dims()));
    for (std::size_t i = 0; i < dims.size(); ++i) dims[i] = static_cast<int>(i);
  }

  std::vector<double> lo;
  std::vector<double> hi;
  lo.reserve(dims.size());
  hi.reserve(dims.size());
  for (int d : dims) {
    lo.push_back(partition.lo(d));
    hi.push_back(partition.hi(d));
  }
  const Partition reduced_partition(lo, hi, partition.cells_per_dim());
  const std::vector<std::vector<double>> reduced_training =
      restricted ? ProjectRows(training_data, dims) : training_data;

  Nsga2Config moga_cfg = config.moga;
  moga_cfg.num_dims = static_cast<int>(dims.size());
  moga_cfg.max_dimension = std::min(moga_cfg.max_dimension,
                                    static_cast<int>(dims.size()));

  // Best score per discovered subspace across all examples.
  std::unordered_map<Subspace, double, SubspaceHash> best;

  for (const auto& example : knowledge.outlier_examples) {
    std::vector<std::vector<double>> batch = reduced_training;
    batch.push_back(restricted
                        ? ProjectRows({example}, dims).front()
                        : example);
    const std::vector<std::size_t> target = {batch.size() - 1};
    BatchSparsityObjectives obj(&reduced_partition, &batch, target);
    moga_cfg.seed = rng.NextUint64();
    MogaSearch search(moga_cfg, &obj);
    for (const auto& ss :
         search.FindTopSparse(config.top_subspaces_per_example)) {
      // Map reduced attribute indices back to original ones.
      Subspace mapped;
      for (int i : ss.subspace.Indices()) {
        mapped.Add(dims[static_cast<std::size_t>(i)]);
      }
      auto it = best.find(mapped);
      if (it == best.end() || ss.score < it->second) best[mapped] = ss.score;
    }
  }

  out.reserve(best.size());
  for (const auto& [subspace, score] : best) out.push_back({subspace, score});
  std::sort(out.begin(), out.end(),
            [](const ScoredSubspace& a, const ScoredSubspace& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.subspace < b.subspace;
            });
  return out;
}

}  // namespace spot
