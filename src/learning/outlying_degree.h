#ifndef SPOT_LEARNING_OUTLYING_DEGREE_H_
#define SPOT_LEARNING_OUTLYING_DEGREE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace spot {

/// Parameters of the outlying-degree computation.
struct OutlyingDegreeConfig {
  /// Number of independent lead-clustering passes (each with a fresh random
  /// visiting order). Averaging across orders removes the order sensitivity
  /// of single-pass leader clustering.
  int num_runs = 5;

  /// Leader distance threshold; <= 0 means estimate from the data.
  double threshold = 0.0;

  /// Scale applied to the estimated threshold (see EstimateLeadThreshold).
  double threshold_scale = 3.0;
};

/// Overall outlying degree of every training point (paper, Section II-C1):
/// lead clustering is run under `num_runs` different data orders and a
/// point's degree is the mean of (1 - |cluster(p)| / N) across runs — points
/// that repeatedly land in small clusters score high.
///
/// Returned values are in [0, 1), one per point.
std::vector<double> ComputeOutlyingDegrees(
    const std::vector<std::vector<double>>& data,
    const OutlyingDegreeConfig& config, Rng& rng);

/// Indices of the `k` highest-degree points, best first.
std::vector<std::size_t> TopOutlyingIndices(const std::vector<double>& degrees,
                                            std::size_t k);

}  // namespace spot

#endif  // SPOT_LEARNING_OUTLYING_DEGREE_H_
