#ifndef SPOT_LEARNING_UNSUPERVISED_H_
#define SPOT_LEARNING_UNSUPERVISED_H_

#include <cstdint>
#include <vector>

#include "grid/partition.h"
#include "learning/outlying_degree.h"
#include "learning/sst.h"
#include "moga/nsga2.h"
#include "subspace/subspace_set.h"

namespace spot {

/// Knobs of the unsupervised learning pipeline.
struct UnsupervisedConfig {
  /// NSGA-II budget for each MOGA invocation.
  Nsga2Config moga;

  /// Outlying-degree scoring knobs.
  OutlyingDegreeConfig outlying_degree;

  /// How many of the most outlying training points get a dedicated MOGA
  /// run (their sparse subspaces seed CS).
  std::size_t top_outlying_points = 10;

  /// Sparse subspaces kept per MOGA run.
  std::size_t top_subspaces_per_run = 8;
};

/// The paper's unsupervised learning process (Section II-C1):
///
///  1. run MOGA on the whole (unlabeled) training batch to find its top
///     sparse subspaces;
///  2. lead-cluster the training data under several random orders and score
///     every point's overall outlying degree;
///  3. re-run MOGA targeted at the top outlying points; the union of sparse
///     subspaces found becomes the CS subset of the SST.
///
/// Returns the scored CS candidates (lowest score = sparsest first).
/// `partition` must already cover the training data's domain.
std::vector<ScoredSubspace> LearnClusteringSubspaces(
    const std::vector<std::vector<double>>& training_data,
    const Partition& partition, const UnsupervisedConfig& config,
    std::uint64_t seed);

}  // namespace spot

#endif  // SPOT_LEARNING_UNSUPERVISED_H_
