#include "learning/outlying_degree.h"

#include <algorithm>
#include <numeric>

#include "learning/lead_clustering.h"

namespace spot {

std::vector<double> ComputeOutlyingDegrees(
    const std::vector<std::vector<double>>& data,
    const OutlyingDegreeConfig& config, Rng& rng) {
  std::vector<double> degrees(data.size(), 0.0);
  if (data.empty()) return degrees;

  double threshold = config.threshold;
  if (threshold <= 0.0) {
    threshold = EstimateLeadThreshold(data, rng, 200, config.threshold_scale);
  }

  const int runs = std::max(1, config.num_runs);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  const double n = static_cast<double>(data.size());

  for (int r = 0; r < runs; ++r) {
    rng.Shuffle(order);
    const LeadClusteringResult result = LeadCluster(data, order, threshold);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::size_t cluster =
          static_cast<std::size_t>(result.assignment[i]);
      degrees[i] += 1.0 - static_cast<double>(result.sizes[cluster]) / n;
    }
  }
  for (double& d : degrees) d /= static_cast<double>(runs);
  return degrees;
}

std::vector<std::size_t> TopOutlyingIndices(const std::vector<double>& degrees,
                                            std::size_t k) {
  std::vector<std::size_t> idx(degrees.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (degrees[a] != degrees[b]) return degrees[a] > degrees[b];
    return a < b;
  });
  if (idx.size() > k) idx.resize(k);
  return idx;
}

}  // namespace spot
