#include "learning/lead_clustering.h"

#include <algorithm>
#include <limits>

#include "common/math_util.h"
#include "common/stats.h"

namespace spot {

LeadClusteringResult LeadCluster(const std::vector<std::vector<double>>& data,
                                 const std::vector<std::size_t>& order,
                                 double threshold) {
  LeadClusteringResult result;
  result.assignment.assign(data.size(), -1);
  const double threshold_sq = threshold * threshold;

  for (std::size_t idx : order) {
    const std::vector<double>& p = data[idx];
    int best_cluster = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < result.leaders.size(); ++c) {
      const double d = SquaredDistance(p, data[result.leaders[c]]);
      if (d < best_dist) {
        best_dist = d;
        best_cluster = static_cast<int>(c);
      }
    }
    if (best_cluster >= 0 && best_dist <= threshold_sq) {
      result.assignment[idx] = best_cluster;
      ++result.sizes[static_cast<std::size_t>(best_cluster)];
    } else {
      result.assignment[idx] = static_cast<int>(result.leaders.size());
      result.leaders.push_back(idx);
      result.sizes.push_back(1);
    }
  }
  return result;
}

double EstimateLeadThreshold(const std::vector<std::vector<double>>& data,
                             Rng& rng, std::size_t sample_size, double scale) {
  if (data.size() < 2) return 1.0;
  const std::size_t n = std::min(sample_size, data.size());
  std::vector<std::size_t> sample = rng.SampleIndices(data.size(), n);
  std::vector<double> dists;
  dists.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    for (std::size_t j = i + 1; j < sample.size(); ++j) {
      dists.push_back(EuclideanDistance(data[sample[i]], data[sample[j]]));
    }
  }
  const double lower_quartile = Quantile(std::move(dists), 0.25);
  return std::max(1e-9, scale * lower_quartile);
}

}  // namespace spot
