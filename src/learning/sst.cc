#include "learning/sst.h"

#include <sstream>
#include <unordered_set>

namespace spot {

Sst::Sst(std::size_t cs_capacity, std::size_t os_capacity)
    : cs_(cs_capacity), os_(os_capacity) {}

void Sst::SetFixed(std::vector<Subspace> fs) { fs_ = std::move(fs); }

bool Sst::InFixed(const Subspace& s) const {
  for (const auto& f : fs_) {
    if (f == s) return true;
  }
  return false;
}

void Sst::AddClustering(const Subspace& s, double score) {
  if (s.IsEmpty() || InFixed(s)) return;
  cs_.Insert(s, score);
}

void Sst::AddOutlierDriven(const Subspace& s, double score) {
  if (s.IsEmpty() || InFixed(s)) return;
  os_.Insert(s, score);
}

void Sst::ClearClustering() { cs_.Clear(); }

std::vector<Subspace> Sst::AllSubspaces() const {
  std::unordered_set<Subspace, SubspaceHash> seen;
  std::vector<Subspace> out;
  out.reserve(fs_.size() + cs_.size() + os_.size());
  for (const auto& s : fs_) {
    if (seen.insert(s).second) out.push_back(s);
  }
  for (const auto& s : cs_.Members()) {
    if (seen.insert(s).second) out.push_back(s);
  }
  for (const auto& s : os_.Members()) {
    if (seen.insert(s).second) out.push_back(s);
  }
  return out;
}

bool Sst::Contains(const Subspace& s) const {
  return InFixed(s) || cs_.Contains(s) || os_.Contains(s);
}

std::size_t Sst::TotalSize() const { return AllSubspaces().size(); }

std::string Sst::Summary() const {
  std::ostringstream os;
  os << "SST: " << TotalSize() << " distinct subspaces\n";
  os << "  FS (" << fs_.size() << ")\n";
  os << "  CS (" << cs_.size() << "):";
  for (const auto& ss : cs_.Ranked()) {
    os << " " << ss.subspace.ToString();
  }
  os << "\n  OS (" << os_.size() << "):";
  for (const auto& ss : os_.Ranked()) {
    os << " " << ss.subspace.ToString();
  }
  os << "\n";
  return os.str();
}

}  // namespace spot
