#include "learning/sst.h"

#include <sstream>
#include <unordered_set>

#include "core/checkpoint.h"
#include "core/detector_events.h"

namespace spot {

namespace {

void EmitInsert(DetectorEventSink* sink, const Subspace& s, SstSubset subset,
                double score) {
  if (sink == nullptr) return;
  DetectorEvent event;
  event.kind = DetectorEventKind::kSstInsert;
  event.subspace = s;
  event.a = static_cast<std::uint64_t>(subset);
  event.value = score;
  sink->OnDetectorEvent(event);
}

}  // namespace

Sst::Sst(std::size_t cs_capacity, std::size_t os_capacity)
    : cs_(cs_capacity), os_(os_capacity) {}

void Sst::SetFixed(std::vector<Subspace> fs) { fs_ = std::move(fs); }

bool Sst::InFixed(const Subspace& s) const {
  for (const auto& f : fs_) {
    if (f == s) return true;
  }
  return false;
}

void Sst::AddClustering(const Subspace& s, double score) {
  if (s.IsEmpty() || InFixed(s)) return;
  const bool existed = cs_.Contains(s);
  if (cs_.Insert(s, score) && !existed) {
    EmitInsert(sink_, s, SstSubset::kClustering, score);
  }
}

void Sst::AddOutlierDriven(const Subspace& s, double score) {
  if (s.IsEmpty() || InFixed(s)) return;
  const bool existed = os_.Contains(s);
  if (os_.Insert(s, score) && !existed) {
    EmitInsert(sink_, s, SstSubset::kOutlierDriven, score);
  }
}

void Sst::ClearClustering() {
  if (sink_ != nullptr && cs_.size() > 0) {
    DetectorEvent event;
    event.kind = DetectorEventKind::kSstClear;
    event.a = cs_.size();
    sink_->OnDetectorEvent(event);
  }
  cs_.Clear();
}

std::vector<Subspace> Sst::AllSubspaces() const {
  // CS and OS are enumerated via Ranked() — sorted by (score, subspace) —
  // not Members(), whose hash-map order depends on insertion/eviction
  // history. The detector tracks new grids in this order, so it must be a
  // function of SST *content* alone for a checkpoint-restored detector to
  // stay bit-identical with an uninterrupted one (see header comment).
  std::unordered_set<Subspace, SubspaceHash> seen;
  std::vector<Subspace> out;
  out.reserve(fs_.size() + cs_.size() + os_.size());
  for (const auto& s : fs_) {
    if (seen.insert(s).second) out.push_back(s);
  }
  for (const auto& ss : cs_.Ranked()) {
    if (seen.insert(ss.subspace).second) out.push_back(ss.subspace);
  }
  for (const auto& ss : os_.Ranked()) {
    if (seen.insert(ss.subspace).second) out.push_back(ss.subspace);
  }
  return out;
}

bool Sst::Contains(const Subspace& s) const {
  return InFixed(s) || cs_.Contains(s) || os_.Contains(s);
}

std::size_t Sst::TotalSize() const { return AllSubspaces().size(); }

void Sst::SaveState(CheckpointWriter& w) const {
  w.U64(fs_.size());
  for (const auto& s : fs_) w.U64(s.bits());
  const auto save_ranked = [&w](const RankedSubspaceSet& set) {
    const std::vector<ScoredSubspace> ranked = set.Ranked();
    w.U64(ranked.size());
    for (const auto& ss : ranked) {
      w.U64(ss.subspace.bits());
      w.F64(ss.score);
    }
  };
  save_ranked(cs_);
  save_ranked(os_);
}

bool Sst::LoadState(CheckpointReader& r) {
  const std::uint64_t nfs = r.U64();
  if (nfs > (1u << 24)) return r.Fail();
  std::vector<Subspace> fs;
  fs.reserve(static_cast<std::size_t>(nfs < (1u << 20) ? nfs : (1u << 20)));
  for (std::uint64_t i = 0; i < nfs && r.ok(); ++i) {
    fs.emplace_back(r.U64());
    if (fs.back().IsEmpty()) return r.Fail();
  }
  const auto load_ranked = [&r](RankedSubspaceSet* set) {
    const std::uint64_t n = r.U64();
    if (set->capacity() != 0 && n > set->capacity()) return r.Fail();
    set->Clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const Subspace s(r.U64());
      const double score = r.F64();
      if (s.IsEmpty() || !set->Insert(s, score)) return r.Fail();
    }
    return r.ok();
  };
  if (!r.ok()) return false;
  fs_ = std::move(fs);
  if (!load_ranked(&cs_)) return false;
  return load_ranked(&os_);
}

std::string Sst::Summary() const {
  std::ostringstream os;
  os << "SST: " << TotalSize() << " distinct subspaces\n";
  os << "  FS (" << fs_.size() << ")\n";
  os << "  CS (" << cs_.size() << "):";
  for (const auto& ss : cs_.Ranked()) {
    os << " " << ss.subspace.ToString();
  }
  os << "\n  OS (" << os_.size() << "):";
  for (const auto& ss : os_.Ranked()) {
    os << " " << ss.subspace.ToString();
  }
  os << "\n";
  return os.str();
}

}  // namespace spot
