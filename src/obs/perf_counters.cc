#include "obs/perf_counters.h"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <dirent.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define SPOT_HAVE_PERF_EVENTS 1
#endif

#include "common/timer.h"

namespace spot {
namespace obs {

namespace {

/// Testing seam (see ForceOpenErrnoForTesting): nonzero short-circuits
/// every open attempt as if perf_event_open itself failed with this.
int g_forced_open_errno = 0;

constexpr double SafeDiv(double num, double den) {
  return den > 0.0 ? num / den : 0.0;
}

#ifdef SPOT_HAVE_PERF_EVENTS

/// The group read layout under PERF_FORMAT_GROUP +
/// PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING: one read() returns every
/// counter of the group from the same instant.
struct GroupReadBuf {
  std::uint64_t nr = 0;
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
  std::uint64_t values[8] = {};  // >= the 5 counters we open
};

int OpenOneCounter(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  // Only the leader starts disabled; members inherit the group's enable
  // state, and one IOC_ENABLE(GROUP) below arms everything atomically.
  attr.disabled = group_fd < 0 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, wherever it is scheduled.
  return static_cast<int>(::syscall(__NR_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

#endif  // SPOT_HAVE_PERF_EVENTS

}  // namespace

void PerfCounterGroup::ForceOpenErrnoForTesting(int err) {
  g_forced_open_errno = err;
}

std::unique_ptr<PerfCounterGroup> PerfCounterGroup::Open() {
  // Not make_unique: the constructor is private.
  std::unique_ptr<PerfCounterGroup> group(new PerfCounterGroup());
  if (g_forced_open_errno != 0) return group;  // simulated denial
#ifdef SPOT_HAVE_PERF_EVENTS
  const int leader = OpenOneCounter(PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader < 0) return group;  // EACCES/EPERM/ENOSYS/...: software mode
  static constexpr std::uint64_t kMembers[4] = {
      PERF_COUNT_HW_INSTRUCTIONS, PERF_COUNT_HW_CACHE_REFERENCES,
      PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
  int members[4];
  for (int i = 0; i < 4; ++i) {
    members[i] = OpenOneCounter(kMembers[i], leader);
    if (members[i] < 0) {
      // All-or-nothing: a partial group would break the "five counters,
      // one instruction window" invariant, so any refusal falls all the
      // way back to software mode.
      for (int j = 0; j < i; ++j) ::close(members[j]);
      ::close(leader);
      return group;
    }
  }
  ::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  if (::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    for (int fd : members) ::close(fd);
    ::close(leader);
    return group;
  }
  group->leader_fd_ = leader;
  for (int i = 0; i < 4; ++i) group->member_fds_[i] = members[i];
  group->mode_ = PerfMode::kHardware;
#endif
  return group;
}

std::unique_ptr<PerfCounterGroup>
PerfCounterGroup::OpenWithBogusConfigForTesting() {
  std::unique_ptr<PerfCounterGroup> group(new PerfCounterGroup());
#ifdef SPOT_HAVE_PERF_EVENTS
  // A generic-hardware event id no PMU defines: the kernel refuses it
  // with EINVAL/ENOENT, which must land in software mode exactly like a
  // permission denial.
  const int fd = OpenOneCounter(~0ull >> 1, -1);
  if (fd >= 0) ::close(fd);  // a kernel accepting this is not our group
#endif
  return group;
}

PerfCounterGroup::~PerfCounterGroup() {
#ifdef SPOT_HAVE_PERF_EVENTS
  for (int fd : member_fds_) {
    if (fd >= 0) ::close(fd);
  }
  if (leader_fd_ >= 0) ::close(leader_fd_);
#endif
}

PerfSample PerfCounterGroup::Read() const {
  PerfSample sample;
  sample.clock_ns = ClockNs();
#ifdef SPOT_HAVE_PERF_EVENTS
  if (mode_ != PerfMode::kHardware) return sample;
  GroupReadBuf buf;
  const ssize_t n = ::read(leader_fd_, &buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t)) || buf.nr < 5) {
    return sample;  // degrade this sample, not the process
  }
  // Multiplex scaling: when the PMU was shared and this group only ran
  // for part of its enabled window, scale counts up by enabled/running —
  // the standard linear estimate.
  double scale = 1.0;
  if (buf.time_running > 0 && buf.time_running < buf.time_enabled) {
    scale = static_cast<double>(buf.time_enabled) /
            static_cast<double>(buf.time_running);
  }
  auto scaled = [scale](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * scale);
  };
  sample.cycles = scaled(buf.values[0]);
  sample.instructions = scaled(buf.values[1]);
  sample.cache_references = scaled(buf.values[2]);
  sample.cache_misses = scaled(buf.values[3]);
  sample.branch_misses = scaled(buf.values[4]);
  sample.hardware = true;
#endif
  return sample;
}

PerfCounterGroup* ThreadPerfGroup() {
  thread_local std::unique_ptr<PerfCounterGroup> group;
  if (group == nullptr) group = PerfCounterGroup::Open();
  return group.get();
}

namespace {

std::string Keyed(const char* base, const std::string& labels) {
  std::string name = base;
  if (!labels.empty()) name.append("{").append(labels).append("}");
  return name;
}

}  // namespace

void PublishPerfTotals(Registry* reg, const std::string& labels,
                       const PerfStageTotals& t) {
  reg->GetCounter(Keyed("perf_cycles", labels))->Set(t.cycles);
  reg->GetCounter(Keyed("perf_instructions", labels))->Set(t.instructions);
  reg->GetCounter(Keyed("perf_cache_references", labels))
      ->Set(t.cache_references);
  reg->GetCounter(Keyed("perf_cache_misses", labels))->Set(t.cache_misses);
  reg->GetCounter(Keyed("perf_branch_misses", labels))->Set(t.branch_misses);
  reg->GetCounter(Keyed("perf_units", labels))->Set(t.units);
  reg->GetCounter(Keyed("perf_samples", labels))->Set(t.samples);
  reg->GetCounter(Keyed("perf_hw_samples", labels))->Set(t.hw_samples);
  reg->GetCounter(Keyed("perf_clock_ns", labels))->Set(t.clock_ns);

  const double units = static_cast<double>(t.units);
  const double instr = static_cast<double>(t.instructions);
  reg->GetGauge(Keyed("perf_ipc", labels))
      ->Set(SafeDiv(instr, static_cast<double>(t.cycles)));
  reg->GetGauge(Keyed("perf_instr_per_unit", labels))
      ->Set(SafeDiv(instr, units));
  reg->GetGauge(Keyed("perf_miss_per_unit", labels))
      ->Set(SafeDiv(static_cast<double>(t.cache_misses), units));
  reg->GetGauge(Keyed("perf_branch_miss_per_unit", labels))
      ->Set(SafeDiv(static_cast<double>(t.branch_misses), units));
  reg->GetGauge(Keyed("perf_cycles_per_unit", labels))
      ->Set(SafeDiv(static_cast<double>(t.cycles), units));
}

void PublishPerfMode(Registry* reg, const PerfCounterGroup* group) {
  const PerfMode mode = group == nullptr ? PerfMode::kDisabled : group->mode();
  reg->GetGauge("perf_mode")->Set(static_cast<double>(mode));
}

void PublishProcessGauges(Registry* reg) {
  double rss_bytes = 0.0;
  double open_fds = 0.0;
#ifdef SPOT_HAVE_PERF_EVENTS
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    unsigned long long total_pages = 0, resident_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &total_pages, &resident_pages) == 2) {
      rss_bytes = static_cast<double>(resident_pages) *
                  static_cast<double>(::sysconf(_SC_PAGESIZE));
    }
    std::fclose(statm);
  }
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    long count = 0;
    while (const dirent* entry = ::readdir(dir)) {
      if (entry->d_name[0] != '.') ++count;
    }
    ::closedir(dir);
    if (count > 0) --count;  // the opendir fd itself
    open_fds = static_cast<double>(count);
  }
#endif
  reg->GetGauge("process_rss_bytes")->Set(rss_bytes);
  reg->GetGauge("process_open_fds")->Set(open_fds);
  reg->GetGauge("process_uptime_seconds")
      ->Set(static_cast<double>(SteadyMicrosSinceStart()) / 1e6);
}

namespace {

/// "stage=\"decode\"" -> "decode"; extra labels append their values:
/// "stage=\"probe\",engine_shard=\"2\"" -> "probe/2".
std::string PrettyStage(const std::string& labels) {
  std::string out;
  std::size_t pos = 0;
  while (pos < labels.size()) {
    const std::size_t eq = labels.find('=', pos);
    if (eq == std::string::npos) break;
    std::size_t vbegin = eq + 1;
    if (vbegin < labels.size() && labels[vbegin] == '"') ++vbegin;
    std::size_t vend = labels.find('"', vbegin);
    if (vend == std::string::npos) vend = labels.size();
    if (!out.empty()) out.append("/");
    out.append(labels, vbegin, vend - vbegin);
    pos = labels.find(',', vend);
    if (pos == std::string::npos) break;
    ++pos;
  }
  return out.empty() ? labels : out;
}

}  // namespace

PerfMode MergedPerfMode(const MetricsSnapshot& snap) {
  // NOT the perf_mode gauge: MetricsSnapshot::Merge SUMS gauges across
  // sections, so two software-mode reactors (1 + 1) would read as
  // "hardware" (2). The raw sample counters sum meaningfully instead:
  // any hardware sample anywhere means hardware, any sample at all means
  // software fallback, no perf series at all means profiling is off.
  static constexpr char kSamples[] = "perf_samples{";
  static constexpr char kHwSamples[] = "perf_hw_samples{";
  bool any_series = false;
  std::uint64_t hw = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.compare(0, sizeof(kHwSamples) - 1, kHwSamples) == 0) {
      hw += static_cast<std::uint64_t>(value);
    } else if (name.compare(0, sizeof(kSamples) - 1, kSamples) == 0) {
      any_series = true;
    }
  }
  if (hw > 0) return PerfMode::kHardware;
  return any_series ? PerfMode::kSoftware : PerfMode::kDisabled;
}

std::string RenderPerfSummary(const MetricsSnapshot& snap) {
  std::string out;
  auto counter = [&snap](const std::string& name) -> double {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0.0
                                     : static_cast<double>(it->second);
  };
  // Every instrumented stage owns a perf_units{...} counter; enumerate
  // those to find the label sets, then pull each stage's raw totals and
  // derive the line's rates from them (derived gauges don't merge
  // meaningfully across sections, the raw counters do).
  static constexpr char kPrefix[] = "perf_units{";
  bool any = false;
  for (const auto& [name, value] : snap.counters) {
    if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) continue;
    const std::string labels =
        name.substr(sizeof(kPrefix) - 1,
                    name.size() - sizeof(kPrefix) /* trailing '}' */);
    const double units = static_cast<double>(value);
    const double cycles = counter(Keyed("perf_cycles", labels));
    const double instr = counter(Keyed("perf_instructions", labels));
    const double misses = counter(Keyed("perf_cache_misses", labels));
    const double branch = counter(Keyed("perf_branch_misses", labels));
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " %s: ipc=%.2f instr/u=%.1f miss/u=%.3f bmiss/u=%.3f",
                  PrettyStage(labels).c_str(), SafeDiv(instr, cycles),
                  SafeDiv(instr, units), SafeDiv(misses, units),
                  SafeDiv(branch, units));
    out.append(any ? " |" : "").append(buf);
    any = true;
  }
  if (!any) return std::string();
  const PerfMode mode = MergedPerfMode(snap);
  return std::string("perf[")
      .append(mode == PerfMode::kHardware
                  ? "hw"
                  : mode == PerfMode::kSoftware ? "sw" : "off")
      .append("]")
      .append(out);
}

}  // namespace obs
}  // namespace spot
