#ifndef SPOT_OBS_HTTP_EXPORTER_H_
#define SPOT_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace spot {
namespace obs {

/// Minimal HTTP/1.0 scrape endpoint for Prometheus-style pulls.
///
/// One dedicated thread accepts connections serially, answers
/// `GET /metrics` with whatever the renderer callback returns
/// (text/plain; version=0.0.4), serves any extra routes registered with
/// AddRoute (e.g. /trace and /journal on the spot server), and 404s
/// everything else. Deliberately tiny: no keep-alive, no chunking,
/// bounded request reads with socket timeouts, one request per
/// connection — exactly enough surface for `curl` and a scrape agent,
/// far away from the ingest data plane.
class HttpExporter {
 public:
  using Renderer = std::function<std::string()>;

  /// `renderer` is invoked on the exporter thread once per scrape; it
  /// must be safe to call concurrently with the rest of the server.
  /// It is served at both /metrics and /.
  HttpExporter(std::string bind_address, int port, Renderer renderer);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Registers one more GET route (exact path match, query string
  /// stripped). Same thread-safety contract as the main renderer. Call
  /// before Start(); later routes with the same path replace earlier
  /// ones.
  void AddRoute(const std::string& path, Renderer renderer,
                std::string content_type = "application/json");

  /// Caps the *whole* exchange with one client — request read, response
  /// write, and the lingering close — at `ms` milliseconds. The per-call
  /// socket timeouts alone cannot bound a connection: a trickle reader
  /// draining one sndbuf refill per timeout window would hold the serial
  /// exporter thread (and every scraper behind it) indefinitely. Default
  /// 5000 ms; call before Start().
  void set_response_deadline_ms(int ms) { response_deadline_ms_ = ms; }

  /// Binds, listens, and spawns the serving thread. False (with *error
  /// set) when the socket cannot be set up.
  bool Start(std::string* error);

  /// Stops the thread and closes the listener. Idempotent.
  void Stop();

  /// Actual bound port (useful when constructed with port 0).
  int port() const { return port_; }

 private:
  struct Route {
    Renderer renderer;
    std::string content_type;
  };

  void Run();
  void Serve(int fd);

  std::string bind_address_;
  int port_;
  int response_deadline_ms_ = 5000;
  /// Exact-path routing table; populated with /metrics and / by the
  /// constructor, extended by AddRoute, read-only once Start() ran.
  std::map<std::string, Route> routes_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace spot

#endif  // SPOT_OBS_HTTP_EXPORTER_H_
