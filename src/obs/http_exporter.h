#ifndef SPOT_OBS_HTTP_EXPORTER_H_
#define SPOT_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace spot {
namespace obs {

/// Minimal HTTP/1.0 scrape endpoint for Prometheus-style pulls.
///
/// One dedicated thread accepts connections serially, answers
/// `GET /metrics` with whatever the renderer callback returns
/// (text/plain; version=0.0.4) and 404s everything else. Deliberately
/// tiny: no keep-alive, no chunking, bounded request reads with socket
/// timeouts, one request per connection — exactly enough surface for
/// `curl` and a scrape agent, far away from the ingest data plane.
class HttpExporter {
 public:
  using Renderer = std::function<std::string()>;

  /// `renderer` is invoked on the exporter thread once per scrape; it
  /// must be safe to call concurrently with the rest of the server.
  HttpExporter(std::string bind_address, int port, Renderer renderer);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds, listens, and spawns the serving thread. False (with *error
  /// set) when the socket cannot be set up.
  bool Start(std::string* error);

  /// Stops the thread and closes the listener. Idempotent.
  void Stop();

  /// Actual bound port (useful when constructed with port 0).
  int port() const { return port_; }

 private:
  void Run();
  void Serve(int fd);

  std::string bind_address_;
  int port_;
  Renderer renderer_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace spot

#endif  // SPOT_OBS_HTTP_EXPORTER_H_
