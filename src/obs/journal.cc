#include "obs/journal.h"

#include <cstdio>

namespace spot::obs {
namespace {

// Minimal JSON string escaping: session names arrive from the wire, so
// quotes, backslashes and control bytes must not break the document.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace

Journal::Journal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

std::uint32_t Journal::InternSession(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i] == name) return static_cast<std::uint32_t>(i);
  }
  sessions_.push_back(name);
  return static_cast<std::uint32_t>(sessions_.size() - 1);
}

void Journal::Append(std::uint32_t session, const DetectorEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  JournalEntry entry;
  entry.seq = seq_++;
  entry.session = session;
  entry.event = event;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_] = std::move(entry);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<JournalEntry> Journal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalEntry> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::string Journal::SessionName(std::uint32_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index < sessions_.size() ? sessions_[index] : std::string("?");
}

std::string Journal::RenderJson() const {
  // Copy under the lock, render outside it: ToString/formatting is the
  // expensive part and must not hold writers up.
  std::vector<JournalEntry> events = Snapshot();
  std::uint64_t total;
  std::uint64_t lost;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = seq_;
    lost = dropped_;
    names = sessions_;
  }

  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\"capacity\":";
  out += std::to_string(capacity_);
  out += ",\"appended\":";
  out += std::to_string(total);
  out += ",\"dropped\":";
  out += std::to_string(lost);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JournalEntry& e = events[i];
    if (i != 0) out.push_back(',');
    out += "{\"seq\":";
    out += std::to_string(e.seq);
    out += ",\"session\":";
    AppendJsonString(&out, e.session < names.size()
                               ? names[e.session]
                               : std::string("?"));
    out += ",\"kind\":";
    AppendJsonString(&out, DetectorEventKindName(e.event.kind));
    out += ",\"tick\":";
    out += std::to_string(e.event.tick);
    if (e.event.subspace.bits() != 0) {
      out += ",\"subspace\":";
      AppendJsonString(&out, e.event.subspace.ToString());
    }
    out += ",\"a\":";
    out += std::to_string(e.event.a);
    out += ",\"value\":";
    AppendDouble(&out, e.event.value);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace spot::obs
