#ifndef SPOT_OBS_QUALITY_H_
#define SPOT_OBS_QUALITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace spot::obs {

/// Detection-quality tallies for one subspace of a session: how many of
/// the session's points produced a finding in this subspace (`alarms`),
/// out of the points probed since the subspace first alarmed (`points` —
/// the alarm-rate denominator; a subspace tracked but never alarming has
/// no row).
struct SubspaceQuality {
  std::uint64_t subspace_bits = 0;
  std::uint64_t points = 0;
  std::uint64_t alarms = 0;
};

/// Per-session detection-quality snapshot: answers "which subspaces are
/// alarming, how close are verdicts to their thresholds, how big is the
/// grid" for one session. The margin histograms record rd/rd_threshold
/// and irsd/irsd_threshold ratios of outlier findings scaled x1000 (the
/// shared ratio-metric convention, DESIGN.md Section 9), so mass just
/// under 1000 means verdicts are borderline. Counters survive eviction;
/// the grid gauges (tracked_subspaces .. cells_reclaimed) are sampled
/// from the live detector and read zero while the session is evicted.
struct SessionQuality {
  std::string session_id;
  std::uint64_t points = 0;  // points probed since the session opened here
  std::uint64_t alarms = 0;  // points with >= 1 finding
  std::uint64_t tracked_subspaces = 0;
  std::uint64_t base_cells = 0;   // populated base-grid cells
  std::uint64_t slab_slots = 0;   // summary slots allocated (live + free)
  std::uint64_t free_slots = 0;   // slots awaiting recycling
  std::uint64_t compactions = 0;  // sweeps across base + projected grids
  std::uint64_t cells_reclaimed = 0;
  Histogram rd_margin;    // rd/rd_threshold x1000, outlier findings
  Histogram irsd_margin;  // irsd/irsd_threshold x1000
  std::vector<SubspaceQuality> subspaces;  // top by alarms, capped
};

}  // namespace spot::obs

#endif  // SPOT_OBS_QUALITY_H_
