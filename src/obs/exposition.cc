#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>
#include <set>

namespace spot {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendSeries(const std::string& name, const std::string& labels,
                  const std::string& value, std::string* out) {
  out->append("spot_").append(name);
  if (!labels.empty()) out->append("{").append(labels).append("}");
  out->append(" ").append(value).append("\n");
}

std::string WithLe(const std::string& labels, const std::string& le) {
  std::string merged = labels;
  if (!merged.empty()) merged.append(",");
  merged.append("le=\"").append(le).append("\"");
  return merged;
}

}  // namespace

std::string RenderPrometheus(const std::vector<LabeledSnapshot>& sections) {
  std::string out;
  std::set<std::string> counter_names, gauge_names, hist_names;
  for (const auto& [labels, snap] : sections) {
    (void)labels;
    for (const auto& [name, v] : snap.counters) counter_names.insert(name);
    for (const auto& [name, v] : snap.gauges) gauge_names.insert(name);
    for (const auto& [name, h] : snap.histograms) hist_names.insert(name);
  }

  for (const std::string& name : counter_names) {
    out.append("# TYPE spot_").append(name).append(" counter\n");
    for (const auto& [labels, snap] : sections) {
      auto it = snap.counters.find(name);
      if (it == snap.counters.end()) continue;
      AppendSeries(name, labels, std::to_string(it->second), &out);
    }
  }
  for (const std::string& name : gauge_names) {
    out.append("# TYPE spot_").append(name).append(" gauge\n");
    for (const auto& [labels, snap] : sections) {
      auto it = snap.gauges.find(name);
      if (it == snap.gauges.end()) continue;
      AppendSeries(name, labels, FormatDouble(it->second), &out);
    }
  }
  for (const std::string& name : hist_names) {
    out.append("# TYPE spot_").append(name).append(" histogram\n");
    for (const auto& [labels, snap] : sections) {
      auto it = snap.histograms.find(name);
      if (it == snap.histograms.end()) continue;
      const Histogram& h = it->second;
      int top = -1;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (h.bucket(i) != 0) top = i;
      }
      std::uint64_t cum = 0;
      for (int i = 0; i <= top && i < Histogram::kNumBuckets - 1; ++i) {
        cum += h.bucket(i);
        AppendSeries(
            name + "_bucket",
            WithLe(labels, FormatDouble(Histogram::BucketUpperBound(i))),
            std::to_string(cum), &out);
      }
      AppendSeries(name + "_bucket", WithLe(labels, "+Inf"),
                   std::to_string(h.count()), &out);
      AppendSeries(name + "_sum", labels, FormatDouble(h.sum()), &out);
      AppendSeries(name + "_count", labels, std::to_string(h.count()), &out);
    }
  }
  return out;
}

std::string SummaryLine(const MetricsSnapshot& snap) {
  std::string out;
  auto sep = [&out] {
    if (!out.empty()) out.append(" ");
  };
  for (const auto& [name, v] : snap.counters) {
    sep();
    out.append(name).append("=").append(std::to_string(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.6g", name.c_str(), v);
    sep();
    out.append(buf);
  }
  for (const auto& [name, h] : snap.histograms) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s=%" PRIu64 "/%.4g/%.4g/%.4g", name.c_str(), h.count(),
                  h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99));
    sep();
    out.append(buf);
  }
  return out;
}

}  // namespace obs
}  // namespace spot
