#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace spot {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Registry keys may embed label pairs in the metric name itself —
/// `perf_cycles{stage="decode"}` — which lets a label-less Registry carry
/// labeled families through every scrape surface unchanged (DESIGN.md
/// Section 12). Splits such a key into its family base name and the
/// embedded label string (empty for plain names).
void SplitEmbeddedLabels(const std::string& name, std::string* base,
                         std::string* embedded) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    embedded->clear();
    return;
  }
  *base = name.substr(0, brace);
  *embedded = name.substr(brace + 1, name.size() - brace - 2);
}

/// Section label first (reactor=/shard=/session=), embedded pairs after.
std::string MergeLabels(const std::string& section,
                        const std::string& embedded) {
  if (section.empty()) return embedded;
  if (embedded.empty()) return section;
  return section + "," + embedded;
}

void AppendSeries(const std::string& name, const std::string& labels,
                  const std::string& value, std::string* out) {
  out->append("spot_").append(name);
  if (!labels.empty()) out->append("{").append(labels).append("}");
  out->append(" ").append(value).append("\n");
}

std::string WithLe(const std::string& labels, const std::string& le) {
  std::string merged = labels;
  if (!merged.empty()) merged.append(",");
  merged.append("le=\"").append(le).append("\"");
  return merged;
}

/// A family's series across every section, in section order (embedded
/// variants of one section follow the section's own map order).
template <typename Value>
using Family = std::map<std::string, std::vector<std::pair<std::string,
                                                           Value>>>;

template <typename Value, typename Map>
void Collect(const std::string& section, const Map& series, Family<Value>* out) {
  std::string base, embedded;
  for (const auto& [name, value] : series) {
    SplitEmbeddedLabels(name, &base, &embedded);
    (*out)[base].emplace_back(MergeLabels(section, embedded), value);
  }
}

}  // namespace

std::string RenderPrometheus(const std::vector<LabeledSnapshot>& sections) {
  std::string out;
  // Group by family base name so each family gets exactly one TYPE line,
  // however many sections — or embedded label variants — carry it.
  Family<std::uint64_t> counters;
  Family<double> gauges;
  Family<const Histogram*> hists;
  for (const auto& [labels, snap] : sections) {
    Collect(labels, snap.counters, &counters);
    Collect(labels, snap.gauges, &gauges);
    std::string base, embedded;
    for (const auto& [name, h] : snap.histograms) {
      SplitEmbeddedLabels(name, &base, &embedded);
      hists[base].emplace_back(MergeLabels(labels, embedded), &h);
    }
  }

  for (const auto& [name, series] : counters) {
    out.append("# TYPE spot_").append(name).append(" counter\n");
    for (const auto& [labels, value] : series) {
      AppendSeries(name, labels, std::to_string(value), &out);
    }
  }
  for (const auto& [name, series] : gauges) {
    out.append("# TYPE spot_").append(name).append(" gauge\n");
    for (const auto& [labels, value] : series) {
      AppendSeries(name, labels, FormatDouble(value), &out);
    }
  }
  for (const auto& [name, series] : hists) {
    out.append("# TYPE spot_").append(name).append(" histogram\n");
    for (const auto& [labels, hp] : series) {
      const Histogram& h = *hp;
      int top = -1;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (h.bucket(i) != 0) top = i;
      }
      std::uint64_t cum = 0;
      for (int i = 0; i <= top && i < Histogram::kNumBuckets - 1; ++i) {
        cum += h.bucket(i);
        AppendSeries(
            name + "_bucket",
            WithLe(labels, FormatDouble(Histogram::BucketUpperBound(i))),
            std::to_string(cum), &out);
      }
      AppendSeries(name + "_bucket", WithLe(labels, "+Inf"),
                   std::to_string(h.count()), &out);
      AppendSeries(name + "_sum", labels, FormatDouble(h.sum()), &out);
      AppendSeries(name + "_count", labels, std::to_string(h.count()), &out);
    }
  }
  return out;
}

std::string SummaryLine(const MetricsSnapshot& snap) {
  std::string out;
  auto sep = [&out] {
    if (!out.empty()) out.append(" ");
  };
  for (const auto& [name, v] : snap.counters) {
    sep();
    out.append(name).append("=").append(std::to_string(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.6g", name.c_str(), v);
    sep();
    out.append(buf);
  }
  for (const auto& [name, h] : snap.histograms) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s=%" PRIu64 "/%.4g/%.4g/%.4g", name.c_str(), h.count(),
                  h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99));
    sep();
    out.append(buf);
  }
  return out;
}

}  // namespace obs
}  // namespace spot
