#ifndef SPOT_OBS_METRICS_H_
#define SPOT_OBS_METRICS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spot {
namespace obs {

/// Monotonic event counter. Plain integer, no atomics: a Counter lives in
/// a Registry owned by exactly one thread (DESIGN.md Section 9) and is
/// only ever read through a published MetricsSnapshot copy.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_ += n; }

  /// Overwrites the value. Used when the counter mirrors a monotonic
  /// source maintained elsewhere (e.g. the reactor's transport counters
  /// folded in at publish time).
  void Set(std::uint64_t v) { value_ = v; }

  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (resident sessions, open connections, queued
/// bytes). Same single-writer discipline as Counter.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed latency/size histogram.
///
/// Bucket 0 covers [0, 1]; bucket i covers (2^(i-1), 2^i] for
/// 1 <= i < 63; bucket 63 is the overflow (2^62, inf). Values are
/// unit-agnostic doubles — the serving pipeline records microseconds.
/// Recording is a bucket increment plus moment updates (no allocation,
/// no locks), so a histogram costs O(1) memory no matter how many
/// observations it absorbs — this is what replaces the loadgen's
/// unbounded per-flush latency vector.
///
/// Quantile() returns the nearest-rank order statistic estimated by
/// linear interpolation inside its bucket: the estimate and the true
/// order statistic always share a bucket, so the estimate is within a
/// factor of 2 of the truth (absolute error <= 1 in bucket 0). Merge()
/// is exact on bucket counts, which makes per-connection / per-reactor
/// histograms combinable at scrape time without any loss beyond the
/// bucketing itself.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index for a value; NaN and negatives land in bucket 0.
  static int BucketIndex(double v);

  /// Inclusive upper bound of bucket i (1, 2, 4, ...); bucket 63 has no
  /// finite bound and reports its lower edge 2^62 here.
  static double BucketUpperBound(int i);

  /// Exclusive lower bound of bucket i (0 for bucket 0).
  static double BucketLowerBound(int i);

  void Record(double v);
  void Merge(const Histogram& other);

  /// Nearest-rank quantile estimate, q clamped to [0,1]. 0 when empty.
  double Quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }

  /// Rebuilds a histogram from serialized parts (wire decode). The count
  /// is recomputed from the bucket counts; min/max are clamped sane.
  static Histogram Restore(const std::uint64_t counts[kNumBuckets],
                           double sum, double min, double max);

  bool operator==(const Histogram& other) const;
  bool operator!=(const Histogram& other) const { return !(*this == other); }

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A deep, self-contained copy of a Registry's contents — the only form
/// in which metrics cross threads. Merge() combines snapshots from
/// several reactors/connections: counters and gauges add, histograms
/// merge bucket-wise.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;

  void Merge(const MetricsSnapshot& other);
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named metric store local to one thread. Get*() interns the name and
/// returns a stable pointer, so hot paths resolve their instruments once
/// (at setup) and touch only plain memory afterwards — zero atomics,
/// zero locks, zero lookups per event. Cross-thread visibility happens
/// exclusively by publishing Snapshot() copies into a MetricsHub.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Mailbox between the single-writer registries and scrapers. One slot
/// per reactor: the owning loop thread overwrites its slot with a fresh
/// snapshot at the end of each loop turn (a few-KB copy, once per turn —
/// off the per-point path), and scrape surfaces (kStats handler, HTTP
/// exporter, --stats-interval dumper) read the slots under the per-slot
/// mutex. Writers never block each other and never contend with the hot
/// path; a scrape sees each reactor at most one loop turn stale.
class MetricsHub {
 public:
  MetricsHub() = default;  // zero slots; reassign to size
  explicit MetricsHub(std::size_t slots);

  void Publish(std::size_t slot, MetricsSnapshot snap);
  MetricsSnapshot Slot(std::size_t slot) const;
  std::vector<MetricsSnapshot> All() const;
  std::size_t size() const { return cells_.size(); }

 private:
  struct Cell {
    mutable std::mutex mu;
    MetricsSnapshot snap;
  };
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// RAII stage timer: records elapsed microseconds into `hist` on
/// destruction. Pass nullptr to make it a no-op.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace spot

#endif  // SPOT_OBS_METRICS_H_
