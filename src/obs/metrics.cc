#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace spot {
namespace obs {

int Histogram::BucketIndex(double v) {
  if (!(v > 1.0)) return 0;  // NaN, negatives and [0,1] share bucket 0
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  const int idx = (m == 0.5) ? e - 1 : e;
  return idx >= kNumBuckets ? kNumBuckets - 1 : idx;
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) return std::ldexp(1.0, kNumBuckets - 2);
  return std::ldexp(1.0, i);
}

double Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0.0;
  return std::ldexp(1.0, i - 1);
}

void Histogram::Record(double v) {
  if (std::isnan(v)) v = 0.0;
  if (v < 0.0) v = 0.0;
  ++buckets_[static_cast<std::size_t>(BucketIndex(v))];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 0-based nearest-rank index of the requested order statistic.
  std::uint64_t rank = 0;
  if (q > 0.0) {
    const double r = std::ceil(q * static_cast<double>(count_)) - 1.0;
    rank = r <= 0.0 ? 0 : static_cast<std::uint64_t>(r);
    rank = std::min(rank, count_ - 1);
  }
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (rank < cum + n) {
      const double lo = BucketLowerBound(i);
      double hi = (i == kNumBuckets - 1) ? std::max(max_, lo)
                                         : BucketUpperBound(i);
      // Interpolate at the order statistic's position inside the bucket,
      // assuming uniform spread; clamp to the observed range so
      // single-value histograms answer exactly.
      const double p = (static_cast<double>(rank - cum) + 0.5) /
                       static_cast<double>(n);
      return std::clamp(lo + p * (hi - lo), min_, max_);
    }
    cum += n;
  }
  return max_;  // unreachable when counts are consistent
}

Histogram Histogram::Restore(const std::uint64_t counts[kNumBuckets],
                             double sum, double min, double max) {
  Histogram h;
  std::uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    h.buckets_[static_cast<std::size_t>(i)] =
        counts[static_cast<std::size_t>(i)];
    total += counts[static_cast<std::size_t>(i)];
  }
  h.count_ = total;
  if (total == 0) return Histogram();
  h.sum_ = std::isnan(sum) ? 0.0 : sum;
  h.min_ = std::isnan(min) ? 0.0 : std::max(min, 0.0);
  h.max_ = std::isnan(max) ? h.min_ : std::max(max, h.min_);
  return h;
}

bool Histogram::operator==(const Histogram& other) const {
  return count_ == other.count_ && sum_ == other.sum_ &&
         min_ == other.min_ && max_ == other.max_ &&
         std::memcmp(buckets_, other.buckets_, sizeof(buckets_)) == 0;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
}

Counter* Registry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = *hist;
  }
  return snap;
}

MetricsHub::MetricsHub(std::size_t slots) {
  cells_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    cells_.push_back(std::make_unique<Cell>());
  }
}

void MetricsHub::Publish(std::size_t slot, MetricsSnapshot snap) {
  if (slot >= cells_.size()) return;
  Cell& cell = *cells_[slot];
  std::lock_guard<std::mutex> lock(cell.mu);
  cell.snap = std::move(snap);
}

MetricsSnapshot MetricsHub::Slot(std::size_t slot) const {
  if (slot >= cells_.size()) return MetricsSnapshot();
  Cell& cell = *cells_[slot];
  std::lock_guard<std::mutex> lock(cell.mu);
  return cell.snap;
}

std::vector<MetricsSnapshot> MetricsHub::All() const {
  std::vector<MetricsSnapshot> out;
  out.reserve(cells_.size());
  for (const auto& cell : cells_) {
    std::lock_guard<std::mutex> lock(cell->mu);
    out.push_back(cell->snap);
  }
  return out;
}

}  // namespace obs
}  // namespace spot
