#ifndef SPOT_OBS_JOURNAL_H_
#define SPOT_OBS_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/detector_events.h"

namespace spot::obs {

/// One journaled event: the detector-level payload plus the journal's own
/// global sequence number and the session the event came from.
struct JournalEntry {
  std::uint64_t seq = 0;
  std::uint32_t session = 0;  // index into Journal's interned session names
  DetectorEvent event;
};

/// Bounded ring of detector events for a serving shard.
///
/// The journal answers "what did the engine decide, and when" — subspace
/// churn, evolution and OS-growth rounds, drift hits, reservoir turnover,
/// grid compactions, checkpoint/evict/reload lifecycle — without touching
/// the per-point hot path: events are emitted only from the rare state
/// transitions (DESIGN.md Section 10), so an unsinked detector pays one
/// pointer test per transition and nothing per point.
///
/// The ring itself is mutex-guarded. That is deliberate: writers arrive at
/// event rate (tens per million points), readers at scrape rate, so the
/// lock is uncontended in practice and keeps Snapshot() trivially correct
/// across threads (the reactor appends while an exporter thread renders).
/// When the ring is full the oldest entry is overwritten and dropped()
/// grows, so a scrape always sees the newest window plus an honest count
/// of what it missed.
class Journal {
 public:
  explicit Journal(std::size_t capacity = 8192);

  /// Interns a session name, returning the index Append() takes. Names are
  /// never evicted (sessions are few and long-lived); re-interning an
  /// existing name returns its original index.
  std::uint32_t InternSession(const std::string& name);

  /// Appends one event for session `session` (an InternSession index),
  /// assigning the next global sequence number. Overwrites the oldest
  /// entry when full.
  void Append(std::uint32_t session, const DetectorEvent& event);

  /// The retained window, oldest first, with ascending seq.
  std::vector<JournalEntry> Snapshot() const;

  /// Events overwritten before any snapshot could retain them.
  std::uint64_t dropped() const;

  /// Total events ever appended (retained + dropped).
  std::uint64_t appended() const;

  std::size_t capacity() const { return capacity_; }

  /// Session name for an InternSession index ("?" if out of range).
  std::string SessionName(std::uint32_t index) const;

  /// The whole journal as a JSON object:
  ///   {"capacity":N,"appended":N,"dropped":N,
  ///    "events":[{"seq":..,"session":"..","kind":"..","tick":..,
  ///               "subspace":"{0,3}","a":..,"value":..}, ...]}
  /// Events are oldest-first. `subspace` is omitted when empty (counter
  /// and lifecycle events carry no subspace).
  std::string RenderJson() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<JournalEntry> ring_;  // grows to capacity_, then wraps
  std::size_t next_ = 0;            // overwrite cursor once full
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> sessions_;
};

/// DetectorEventSink adapter binding one session of a Journal: hand one to
/// SpotDetector::set_event_sink and every engine event lands in the ring
/// tagged with that session. Copyable and cheap; must not outlive the
/// journal.
class JournalSink : public DetectorEventSink {
 public:
  JournalSink(Journal* journal, std::uint32_t session)
      : journal_(journal), session_(session) {}

  void OnDetectorEvent(const DetectorEvent& event) override {
    journal_->Append(session_, event);
  }

  std::uint32_t session() const { return session_; }

 private:
  Journal* journal_;
  std::uint32_t session_;
};

}  // namespace spot::obs

#endif  // SPOT_OBS_JOURNAL_H_
