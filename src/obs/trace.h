#ifndef SPOT_OBS_TRACE_H_
#define SPOT_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spot::obs {

/// Pipeline stage a trace span covers. kShardProbe nests inside kProcess:
/// one span per engine shard of a sharded batch, on its worker's thread.
enum class TraceStage : std::uint8_t {
  kDecode = 0,      // wire bytes -> frames
  kCoalesce = 1,    // frames -> per-session pending batch
  kProcess = 2,     // detector ProcessBatch (whole chunk)
  kShardProbe = 3,  // one shard's slice of the probe fan-out
  kEncode = 4,      // verdicts -> response frames
  kWrite = 5,       // response bytes -> socket
};

inline const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kDecode:
      return "decode";
    case TraceStage::kCoalesce:
      return "coalesce";
    case TraceStage::kProcess:
      return "process";
    case TraceStage::kShardProbe:
      return "shard_probe";
    case TraceStage::kEncode:
      return "encode";
    case TraceStage::kWrite:
      return "write";
  }
  return "unknown";
}

/// One complete ("ph":"X") span on the SteadyMicrosSinceStart timebase.
struct TraceEvent {
  TraceStage stage = TraceStage::kDecode;
  std::uint64_t ts_us = 0;   // span start
  std::uint64_t dur_us = 0;  // span length
  std::uint64_t batch_id = 0;  // correlation key; 0 = not batch-scoped
  std::uint32_t reactor = 0;
  std::int32_t shard = -1;  // >= 0 only for kShardProbe
  std::uint64_t points = 0;  // payload size (points or bytes for kWrite)
  std::string session;       // empty when not session-scoped
};

/// Fixed-size per-reactor flight recorder: a mutex-guarded ring of the most
/// recent spans. Each reactor owns one recorder and is its only writer, so
/// the lock is contended only during a dump; when recording is off the
/// reactor never calls Record at all (the enabled check lives caller-side),
/// making the recorder literally zero-cost when idle.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 2048,
                         std::uint32_t reactor = 0);

  /// Appends a span (reactor id is stamped here), overwriting the oldest
  /// when full.
  void Record(TraceEvent event);

  /// The retained window, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Spans overwritten since construction.
  std::uint64_t dropped() const;

  std::size_t capacity() const { return capacity_; }
  std::uint32_t reactor() const { return reactor_; }

 private:
  const std::size_t capacity_;
  const std::uint32_t reactor_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Renders spans from any number of recorders as a Chrome-trace / Perfetto
/// JSON document: {"traceEvents":[{"name","ph":"X","ts","dur","pid","tid",
/// "args":{...}}, ...]}. pid = reactor, tid = reactor for reactor-thread
/// stages or 1000+shard for shard-probe spans (so worker lanes render as
/// separate rows under the reactor's process). Load the output directly in
/// chrome://tracing or ui.perfetto.dev.
std::string RenderChromeTrace(
    const std::vector<std::vector<TraceEvent>>& snapshots);

}  // namespace spot::obs

#endif  // SPOT_OBS_TRACE_H_
