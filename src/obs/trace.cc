#include "obs/trace.h"

#include <utility>

namespace spot::obs {
namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back('?');  // session names are printable; don't bloat
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity, std::uint32_t reactor)
    : capacity_(capacity == 0 ? 1 : capacity), reactor_(reactor) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void TraceRecorder::Record(TraceEvent event) {
  event.reactor = reactor_;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string RenderChromeTrace(
    const std::vector<std::vector<TraceEvent>>& snapshots) {
  std::string out;
  std::size_t total = 0;
  for (const auto& s : snapshots) total += s.size();
  out.reserve(64 + total * 128);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& snapshot : snapshots) {
    for (const TraceEvent& e : snapshot) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":";
      AppendJsonString(&out, TraceStageName(e.stage));
      out += ",\"ph\":\"X\",\"ts\":";
      out += std::to_string(e.ts_us);
      out += ",\"dur\":";
      out += std::to_string(e.dur_us);
      out += ",\"pid\":";
      out += std::to_string(e.reactor);
      out += ",\"tid\":";
      // Shard-probe spans run on pool workers: give each shard its own
      // lane under the reactor's process so the fan-out renders stacked.
      out += std::to_string(e.shard >= 0 ? 1000 + e.shard
                                         : static_cast<int>(e.reactor));
      out += ",\"args\":{\"batch\":";
      out += std::to_string(e.batch_id);
      out += ",\"points\":";
      out += std::to_string(e.points);
      if (!e.session.empty()) {
        out += ",\"session\":";
        AppendJsonString(&out, e.session);
      }
      if (e.shard >= 0) {
        out += ",\"shard\":";
        out += std::to_string(e.shard);
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace spot::obs
