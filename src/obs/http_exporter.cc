#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace spot {
namespace obs {
namespace {

constexpr std::size_t kMaxRequestBytes = 4096;

bool SendAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpExporter::HttpExporter(std::string bind_address, int port,
                           Renderer renderer)
    : bind_address_(std::move(bind_address)), port_(port) {
  Route metrics{std::move(renderer),
                "text/plain; version=0.0.4; charset=utf-8"};
  routes_["/"] = metrics;
  routes_["/metrics"] = std::move(metrics);
}

void HttpExporter::AddRoute(const std::string& path, Renderer renderer,
                            std::string content_type) {
  routes_[path] = Route{std::move(renderer), std::move(content_type)};
}

HttpExporter::~HttpExporter() { Stop(); }

bool HttpExporter::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, bind_address_.c_str(), &addr.sin_addr) != 1) {
    *error = "bad metrics bind address '" + bind_address_ + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    *error = std::string("bind/listen on metrics port ") +
             std::to_string(port_) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  stop_.store(false);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void HttpExporter::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::Run() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    timeval tv{2, 0};  // a stuck scraper cannot wedge the exporter
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    Serve(fd);
    ::close(fd);
  }
}

void HttpExporter::Serve(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find('\n');
  if (line_end == std::string::npos) return;
  std::string line = request.substr(0, line_end);
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? "" : line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? ""
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string status, content_type, body;
  const auto route = routes_.find(path);
  if (method != "GET" && method != "HEAD") {
    status = "405 Method Not Allowed";
    content_type = "text/plain";
    body = "only GET is supported\n";
  } else if (route != routes_.end()) {
    status = "200 OK";
    content_type = route->second.content_type;
    body = route->second.renderer ? route->second.renderer() : "";
  } else {
    status = "404 Not Found";
    content_type = "text/plain";
    body = "scrape /metrics\n";
  }

  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  if (method != "HEAD") response += body;
  SendAll(fd, response.data(), response.size());
}

}  // namespace obs
}  // namespace spot
