#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace spot {
namespace obs {
namespace {

constexpr std::size_t kMaxRequestBytes = 4096;

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline` (0 once it passed).
int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// Arms SO_RCVTIMEO/SO_SNDTIMEO with min(2s, time-to-deadline) so every
/// blocking socket call both makes timely progress checks and can never
/// overshoot the connection's overall deadline.
void ArmTimeout(int fd, int opt, Clock::time_point deadline) {
  int ms = RemainingMs(deadline);
  if (ms > 2000) ms = 2000;
  if (ms < 1) ms = 1;
  timeval tv{ms / 1000, (ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

/// Writes the whole buffer or gives up at `deadline`. A client reading a
/// trickle at a time refills the socket buffer slowly; without the
/// deadline each refill resets the per-send timeout and one slow scraper
/// wedges the serial exporter for everyone (the bug this bounds away).
bool SendAll(int fd, const char* data, std::size_t len,
             Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < len) {
    if (RemainingMs(deadline) == 0) return false;
    ArmTimeout(fd, SO_SNDTIMEO, deadline);
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-check
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Lingering close: half-close our side, then drain whatever the client
/// still has in flight (bounded by the deadline). Closing with unread
/// request bytes pending would RST the connection and can discard the
/// response the kernel had not yet pushed — curl would then see a
/// truncated body despite the Content-Length promise.
void DrainAndClose(int fd, Clock::time_point deadline) {
  ::shutdown(fd, SHUT_WR);
  char buf[1024];
  while (RemainingMs(deadline) > 0) {
    ArmTimeout(fd, SO_RCVTIMEO, deadline);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF, timeout, or error: nothing more to wait for
  }
  ::close(fd);
}

}  // namespace

HttpExporter::HttpExporter(std::string bind_address, int port,
                           Renderer renderer)
    : bind_address_(std::move(bind_address)), port_(port) {
  Route metrics{std::move(renderer),
                "text/plain; version=0.0.4; charset=utf-8"};
  routes_["/"] = metrics;
  routes_["/metrics"] = std::move(metrics);
}

void HttpExporter::AddRoute(const std::string& path, Renderer renderer,
                            std::string content_type) {
  routes_[path] = Route{std::move(renderer), std::move(content_type)};
}

HttpExporter::~HttpExporter() { Stop(); }

bool HttpExporter::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, bind_address_.c_str(), &addr.sin_addr) != 1) {
    *error = "bad metrics bind address '" + bind_address_ + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    *error = std::string("bind/listen on metrics port ") +
             std::to_string(port_) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  stop_.store(false);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void HttpExporter::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::Run() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    Serve(fd);  // sets its own per-exchange deadline and closes fd
  }
}

void HttpExporter::Serve(int fd) {
  // One deadline bounds the whole exchange: a stuck or trickling scraper
  // cannot wedge the serial exporter thread past this point.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(response_deadline_ms_);
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    if (RemainingMs(deadline) == 0) break;
    ArmTimeout(fd, SO_RCVTIMEO, deadline);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find('\n');
  if (line_end == std::string::npos) {
    ::close(fd);
    return;
  }
  std::string line = request.substr(0, line_end);
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? "" : line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? ""
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string status, content_type, body;
  const auto route = routes_.find(path);
  if (method != "GET" && method != "HEAD") {
    status = "405 Method Not Allowed";
    content_type = "text/plain";
    body = "only GET is supported\n";
  } else if (route != routes_.end()) {
    status = "200 OK";
    content_type = route->second.content_type;
    body = route->second.renderer ? route->second.renderer() : "";
  } else {
    status = "404 Not Found";
    content_type = "text/plain";
    body = "scrape /metrics\n";
  }

  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  if (method != "HEAD") response += body;
  SendAll(fd, response.data(), response.size(), deadline);
  DrainAndClose(fd, deadline);
}

}  // namespace obs
}  // namespace spot
