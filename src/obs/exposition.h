#ifndef SPOT_OBS_EXPOSITION_H_
#define SPOT_OBS_EXPOSITION_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace spot {
namespace obs {

/// One labeled slice of the exposition — e.g. {"reactor=\"0\"", <snap>}
/// or {"shard=\"1\"", <snap>}. An empty label string means a global,
/// unlabeled series.
using LabeledSnapshot = std::pair<std::string, MetricsSnapshot>;

/// Renders Prometheus text exposition format 0.0.4. Metric families are
/// grouped across sections so each name gets exactly one `# TYPE` line;
/// every metric name is prefixed `spot_`. Histograms emit cumulative
/// `_bucket{le=...}` series (only up to the highest populated bucket,
/// then `+Inf`), plus `_sum` and `_count`.
///
/// Metric names may embed label pairs — `perf_cycles{stage="decode"}` —
/// which are split off the family name and merged after the section
/// label, so a label-less Registry can carry labeled families (the perf
/// profiling plane rides this, DESIGN.md Section 12).
std::string RenderPrometheus(const std::vector<LabeledSnapshot>& sections);

/// Compact single-line rendering for periodic log dumps: counters and
/// gauges as `k=v`, histograms as `k=count/p50/p95/p99` (values in the
/// histogram's native unit). Keys in sorted order.
std::string SummaryLine(const MetricsSnapshot& snap);

}  // namespace obs
}  // namespace spot

#endif  // SPOT_OBS_EXPOSITION_H_
