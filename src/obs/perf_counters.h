#ifndef SPOT_OBS_PERF_COUNTERS_H_
#define SPOT_OBS_PERF_COUNTERS_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace spot {
namespace obs {

/// How a PerfCounterGroup is measuring (DESIGN.md Section 12). Surfaced
/// as the `perf_mode` gauge so a scrape can tell real hardware counts
/// from the clock-only fallback at a glance.
enum class PerfMode : int {
  /// Profiling is off entirely (no group exists; the hooks cost one
  /// null-pointer test). Never reported by a live group — only by the
  /// publish helpers when asked to describe a null group.
  kDisabled = 0,
  /// perf_event_open(2) was denied (perf_event_paranoid, seccomp, a
  /// non-Linux build, or an unsupported PMU): hardware counts read as 0
  /// and only the steady-clock time keeps derived rates defined.
  kSoftware = 1,
  /// The full five-counter group is live on this thread.
  kHardware = 2,
};

/// One cumulative reading of a group: totals since the group was opened.
/// `clock_ns` is always valid (steady clock), whatever the mode — it is
/// the denominator that keeps every derived rate finite in fallback.
struct PerfSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t clock_ns = 0;
  /// True when the five counters above came from live hardware (scaled
  /// for multiplexing); false in software fallback (they are then 0).
  bool hardware = false;
};

/// A per-thread perf_event_open(2) counter group: cycles (leader) +
/// instructions + cache-references + cache-misses + branch-misses, read
/// atomically in one syscall via PERF_FORMAT_GROUP so the five values
/// always describe the same instruction window. Counters are opened with
/// pid=0/cpu=-1 — they follow the *calling thread* — so every measuring
/// thread needs its own group (see ThreadPerfGroup()).
///
/// Graceful degradation: when the leader cannot be opened (EACCES/EPERM
/// from perf_event_paranoid or seccomp, ENOSYS/ENOENT on exotic kernels,
/// EINVAL from an unsupported PMU, or a non-Linux build) the group opens
/// in kSoftware mode — Read() then reports zero hardware counts and a
/// valid steady-clock time, and nothing ever fails at the call sites.
/// The group is all-or-nothing: if any member counter is refused the
/// whole group falls back, so the atomic-read invariant can never be
/// silently violated by a partial group.
///
/// Reads are multiplex-scaled (PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING):
/// when the kernel rotates this group off the PMU, counts are scaled by
/// enabled/running time, the standard estimate for shared hardware.
class PerfCounterGroup {
 public:
  /// Opens a group measuring the calling thread. Never fails: denial of
  /// the syscall yields a kSoftware group. Never returns null.
  static std::unique_ptr<PerfCounterGroup> Open();

  /// Testing seam: makes every subsequent Open() behave as if
  /// perf_event_open failed with `err` (e.g. EACCES). 0 restores real
  /// behavior. Not thread-safe against concurrent Open() — test setup
  /// only.
  static void ForceOpenErrnoForTesting(int err);

  /// Testing seam: attempts a real perf_event_open with a nonsense event
  /// config, which any kernel refuses (EINVAL) — the bogus-event leg of
  /// the degradation ladder. Yields a kSoftware group everywhere.
  static std::unique_ptr<PerfCounterGroup> OpenWithBogusConfigForTesting();

  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  PerfMode mode() const { return mode_; }

  /// Cumulative totals since Open(). One read(2) of the group leader in
  /// hardware mode; a steady-clock read always. A failed group read
  /// degrades that sample to software (it never throws or aborts).
  PerfSample Read() const;

 private:
  PerfCounterGroup() : t0_(std::chrono::steady_clock::now()) {}

  std::uint64_t ClockNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  PerfMode mode_ = PerfMode::kSoftware;
  int leader_fd_ = -1;
  /// Member fds in group order (instructions, cache-references,
  /// cache-misses, branch-misses); closed with the leader.
  int member_fds_[4] = {-1, -1, -1, -1};
  std::chrono::steady_clock::time_point t0_;
};

/// The calling thread's lazily opened group. Pool workers and reactor
/// loops each get their own (perf counters are per-thread); the group
/// lives for the thread's lifetime. Only call when profiling is enabled —
/// the first call per thread pays the open. Never returns null.
PerfCounterGroup* ThreadPerfGroup();

/// Accumulated counter deltas for one instrumented stage (a plain
/// single-writer struct, same ownership discipline as Registry). `units`
/// is the stage's natural work denominator — points for the pipeline
/// stages and phase-0 binning, logical probes (points x grids) for the
/// shard loops, bytes for the write stage — so `instructions / units`
/// is instructions-per-point / per-probe / per-byte respectively.
struct PerfStageTotals {
  std::uint64_t samples = 0;     // scopes committed
  std::uint64_t hw_samples = 0;  // scopes measured in hardware mode
  std::uint64_t units = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t clock_ns = 0;

  void Merge(const PerfStageTotals& other) {
    samples += other.samples;
    hw_samples += other.hw_samples;
    units += other.units;
    cycles += other.cycles;
    instructions += other.instructions;
    cache_references += other.cache_references;
    cache_misses += other.cache_misses;
    branch_misses += other.branch_misses;
    clock_ns += other.clock_ns;
  }
};

/// RAII stage scope: snapshots the group at construction and folds the
/// delta into `totals` at destruction. Each scope carries its *own*
/// start sample, so scopes nest freely — the reactor's `process` stage
/// encloses the engine's shard scopes on the same thread and each still
/// measures exactly its own window. Pass nulls to make it a no-op (the
/// disabled-path cost: one pointer test).
class ScopedCounters {
 public:
  ScopedCounters(PerfCounterGroup* group, PerfStageTotals* totals)
      : group_(group), totals_(totals) {
    if (group_ != nullptr && totals_ != nullptr) start_ = group_->Read();
  }

  ScopedCounters(const ScopedCounters&) = delete;
  ScopedCounters& operator=(const ScopedCounters&) = delete;

  /// Work items this scope will be attributed (see PerfStageTotals).
  void set_units(std::uint64_t n) { units_ = n; }

  /// Discards the scope: nothing is folded at destruction. Used when the
  /// measured attempt turns out not to be the event it was armed for
  /// (e.g. a decode pass that ended kNeedMore instead of a frame).
  void Cancel() { totals_ = nullptr; }

  /// Ends the measured window *now* and folds the delta; the destructor
  /// then does nothing. For stages that end mid-function — the coalesce
  /// stage closes before the early batch cut hands the same call frame
  /// over to the process stage.
  void Commit() {
    Fold();
    totals_ = nullptr;
  }

  ~ScopedCounters() { Fold(); }

 private:
  void Fold() {
    if (group_ == nullptr || totals_ == nullptr) return;
    const PerfSample end = group_->Read();
    totals_->samples += 1;
    totals_->hw_samples += (start_.hardware && end.hardware) ? 1 : 0;
    totals_->units += units_;
    totals_->cycles += end.cycles - start_.cycles;
    totals_->instructions += end.instructions - start_.instructions;
    totals_->cache_references +=
        end.cache_references - start_.cache_references;
    totals_->cache_misses += end.cache_misses - start_.cache_misses;
    totals_->branch_misses += end.branch_misses - start_.branch_misses;
    totals_->clock_ns += end.clock_ns - start_.clock_ns;
  }

  PerfCounterGroup* group_;
  PerfStageTotals* totals_;
  PerfSample start_;
  std::uint64_t units_ = 0;
};

/// Folds `totals` into `reg` as the spot_perf_* metric families, with
/// `labels` embedded in the metric names (e.g. `stage="decode"` yields
/// the key `perf_cycles{stage="decode"}`). The exposition layer splits
/// the name back apart and merges embedded labels with the section label
/// (see RenderPrometheus), so the same series ride every scrape surface
/// unchanged. Raw totals publish as counters (Set — the caller owns the
/// running totals); derived rates (IPC, per-unit instructions / cache
/// misses / branch misses / cycles) publish as gauges and are always
/// finite: a zero denominator — software fallback, or no work yet —
/// reports 0, never NaN/Inf.
void PublishPerfTotals(Registry* reg, const std::string& labels,
                       const PerfStageTotals& totals);

/// Publishes the `perf_mode` gauge (see PerfMode; null group = disabled).
void PublishPerfMode(Registry* reg, const PerfCounterGroup* group);

/// Process-level gauges: `process_rss_bytes` (/proc/self/statm),
/// `process_open_fds` (/proc/self/fd), `process_uptime_seconds` (shared
/// steady timebase). Gauges read 0 where /proc is unavailable.
void PublishProcessGauges(Registry* reg);

/// The effective profiling mode of a (possibly merged) snapshot, derived
/// from the raw perf_samples / perf_hw_samples counters — NOT the
/// per-section `perf_mode` gauge, which MetricsSnapshot::Merge sums into
/// nonsense (two software-mode sections would read 1 + 1 = "hardware").
/// Any hardware sample anywhere = kHardware; any sample = kSoftware;
/// no perf series at all = kDisabled.
PerfMode MergedPerfMode(const MetricsSnapshot& snap);

/// One compact line for periodic log dumps (`spot_serverd
/// --prof-interval`): per-stage IPC / instructions-per-unit /
/// cache-miss-per-unit pulled back out of a (possibly merged) snapshot's
/// spot_perf_* series, e.g.
///   `perf mode=hw decode: ipc=1.42 instr/u=518 miss/u=0.8 ...`.
/// Empty string when the snapshot carries no perf series.
std::string RenderPerfSummary(const MetricsSnapshot& snap);

}  // namespace obs
}  // namespace spot

#endif  // SPOT_OBS_PERF_COUNTERS_H_
